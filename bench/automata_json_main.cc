// Perf-trajectory benchmark for the §2.2 automaton pipeline: times the
// legacy std::set/std::map engine against the compiled bitset engine on
// determinisation, product, provenance-run and end-to-end workloads,
// and writes BENCH_automata.json (see bench/harness.h).
//
// Usage: bench_automata_json [min_ms_per_workload] [output.json]

#include <cstdlib>
#include <memory>
#include <string>

#include "automata/automaton_expr.h"
#include "automata/automaton_library.h"
#include "automata/compiled_automaton.h"
#include "automata/provenance_run.h"
#include "automata/tree_automaton.h"
#include "harness.h"
#include "inference/junction_tree.h"
#include "prxml/to_uncertain_tree.h"
#include "queries/query_session.h"
#include "uncertain/c_instance.h"
#include "uncertain/tid_instance.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace tud {
namespace {

// A dense random NTA sized so that subset construction does real work.
TreeAutomaton RandomNta(uint64_t seed, uint32_t num_states,
                        Label alphabet) {
  Rng rng(seed);
  TreeAutomaton a(num_states, alphabet);
  for (Label l = 0; l < alphabet; ++l) {
    for (State q = 0; q < num_states; ++q) {
      if (rng.Bernoulli(0.4)) a.AddLeafTransition(l, q);
    }
    for (State ql = 0; ql < num_states; ++ql) {
      for (State qr = 0; qr < num_states; ++qr) {
        uint64_t count = rng.UniformInt(2);
        for (uint64_t i = 0; i < count; ++i) {
          a.AddTransition(l, ql, qr,
                          static_cast<State>(rng.UniformInt(num_states)));
        }
      }
    }
  }
  a.SetAccepting(num_states - 1);
  return a;
}

int Main(int argc, char** argv) {
  const double min_ms = argc > 1 ? std::atof(argv[1]) : 200.0;
  const std::string out = argc > 2 ? argv[2] : "BENCH_automata.json";
  bench::Harness harness;

  // --- Determinisation (subset construction). The NTA is sized so the
  // subset automaton lands in the hundreds of states: big enough that
  // successor computation dominates, small enough that one legacy
  // iteration stays under a second.
  TreeAutomaton nta = RandomNta(11, 9, 2);
  harness.Register("determinize/legacy_set_map",
                   [&] { nta.DeterminizeLegacy(); });
  harness.Register("determinize/compiled_bitset", [&] {
    CompiledAutomaton::Compile(nta).Determinize();
  });

  // --- Product (conjunction of two NTAs). -----------------------------
  TreeAutomaton lhs = RandomNta(21, 12, 4);
  TreeAutomaton rhs = RandomNta(22, 12, 4);
  harness.Register("product/legacy_set_map", [&] {
    TreeAutomaton::ProductLegacy(lhs, rhs, /*conjunction=*/true);
  });
  harness.Register("product/compiled_bitset", [&] {
    CompiledAutomaton::Product(CompiledAutomaton::Compile(lhs),
                               CompiledAutomaton::Compile(rhs),
                               /*conjunction=*/true);
  });

  // --- Provenance run over a PrXML-derived uncertain tree. ------------
  // The uncertain tree must be rebuilt per iteration (the run grows its
  // circuit); both arms pay the identical rebuild, and the tree-only
  // workload records that shared cost.
  Rng doc_rng(6);
  PrXmlDocument doc = workloads::MakeWikidataPrxml(doc_rng, 128, 1);
  auto build_tree = [&](XmlLabelMap& labels, Label& dead) {
    return PrXmlToUncertainTree(doc, labels, &dead);
  };
  harness.Register("provenance/tree_build_only", [&] {
    XmlLabelMap labels;
    Label dead;
    build_tree(labels, dead);
  });
  harness.Register("provenance/legacy", [&] {
    XmlLabelMap labels;
    Label dead;
    UncertainBinaryTree tree = build_tree(labels, dead);
    TreeAutomaton combo = TreeAutomaton::Product(
        MakeExistsLabel(tree.AlphabetSize(), labels.Find("musician")),
        MakeCountAtLeast(tree.AlphabetSize(), labels.Find("entity"), 2),
        /*conjunction=*/true);
    ProvenanceRunLegacy(combo, tree);
  });
  harness.Register("provenance/compiled", [&] {
    XmlLabelMap labels;
    Label dead;
    UncertainBinaryTree tree = build_tree(labels, dead);
    TreeAutomaton combo = TreeAutomaton::Product(
        MakeExistsLabel(tree.AlphabetSize(), labels.Find("musician")),
        MakeCountAtLeast(tree.AlphabetSize(), labels.Find("entity"), 2),
        /*conjunction=*/true);
    ProvenanceRun(combo, tree);
  });

  // --- Boolean closure: the TreeAutomaton chain (which round-trips
  // through the std::map representation between steps) vs the same
  // combination compiled end to end by AutomatonExpr.
  TreeAutomaton closure_lhs = RandomNta(31, 8, 2);
  TreeAutomaton closure_rhs = RandomNta(32, 6, 2);
  harness.Register("closure/tree_api_round_trip", [&] {
    TreeAutomaton::Product(closure_lhs, closure_rhs.Complement(),
                           /*conjunction=*/true);
  });
  harness.Register("closure/automaton_expr_compiled", [&] {
    (AutomatonExpr::Atom(closure_lhs) && !AutomatonExpr::Atom(closure_rhs))
        .Compile();
  });

  // --- End-to-end §2.2 pipeline (tree + automaton + provenance + JT).
  harness.Register("pipeline_e2e/boolean_combination", [&] {
    XmlLabelMap labels;
    Label dead;
    UncertainBinaryTree tree = build_tree(labels, dead);
    TreeAutomaton has_musician =
        MakeExistsLabel(tree.AlphabetSize(), labels.Find("musician"));
    TreeAutomaton has_statement =
        MakeExistsLabel(tree.AlphabetSize(), labels.Find("statement"));
    TreeAutomaton combo = TreeAutomaton::Product(
        has_musician, has_statement.Complement(), /*conjunction=*/true);
    GateId lineage = ProvenanceRun(combo, tree);
    JunctionTreeProbability(tree.circuit(), lineage, doc.events());
  });
  harness.Register("pipeline_e2e/boolean_combination_expr", [&] {
    XmlLabelMap labels;
    Label dead;
    UncertainBinaryTree tree = build_tree(labels, dead);
    AutomatonExpr combo =
        AutomatonExpr::Atom(
            MakeExistsLabel(tree.AlphabetSize(), labels.Find("musician"))) &&
        !AutomatonExpr::Atom(MakeExistsLabel(tree.AlphabetSize(),
                                             labels.Find("statement")));
    GateId lineage = ProvenanceRun(combo.Compile(), tree);
    JunctionTreeProbability(tree.circuit(), lineage, doc.events());
  });

  // --- MSO reachability, per-query derivation vs session reuse: one
  // iteration = one s-t reachability query (lineage + probability) on a
  // width-2 uncertain ladder.
  Schema edge_schema;
  edge_schema.AddRelation("E", 2);
  Rng ladder_rng(8);
  TidInstance ladder(edge_schema);
  const uint32_t rungs = 48;
  for (uint32_t i = 0; i + 2 < 2 * rungs; i += 2) {
    ladder.AddFact(0, {i, i + 2}, 0.5 + 0.4 * ladder_rng.UniformDouble());
    ladder.AddFact(0, {i + 1, i + 3},
                   0.5 + 0.4 * ladder_rng.UniformDouble());
    ladder.AddFact(0, {i, i + 1}, 0.3 + 0.4 * ladder_rng.UniformDouble());
  }
  CInstance ladder_pc = ladder.ToPcInstance();
  harness.Register("mso_reachability/fresh_per_query", [&] {
    PccInstance pcc = PccInstance::FromCInstance(ladder_pc);
    GateId lineage = ComputeReachabilityLineage(pcc, 0, 0, 2 * rungs - 2);
    JunctionTreeProbability(pcc.circuit(), lineage, pcc.events());
  });
  QuerySession ladder_session = QuerySession::FromCInstance(
      ladder_pc, std::make_unique<JunctionTreeEngine>(
                     /*seed_topological=*/false, /*cache_plans=*/true));
  harness.Register("mso_reachability/session_reuse", [&] {
    GateId lineage = ladder_session.ReachabilityLineage(0, 0, 2 * rungs - 2);
    ladder_session.Probability(lineage);
  });

  // --- The numeric junction-tree Execute alone (the pass the flat
  // arenas and small-bag kernels target), on the ladder lineage's
  // prebuilt plan; the *_generic variant downgrades every small-bag
  // kernel to the generic strided loop to expose the dispatch win.
  PccInstance jt_pcc = PccInstance::FromCInstance(ladder_pc);
  GateId jt_lineage = ComputeReachabilityLineage(jt_pcc, 0, 0, 2 * rungs - 2);
  JunctionTreePlan jt_plan =
      JunctionTreePlan::Build(jt_pcc.circuit(), jt_lineage);
  JunctionTreePlan jt_plan_generic =
      JunctionTreePlan::Build(jt_pcc.circuit(), jt_lineage);
  jt_plan_generic.ForceGenericKernelsForTest();
  harness.Register("jt_execute/ladder48_small_bag_kernels", [&] {
    jt_plan.Execute(jt_pcc.events());
  });
  harness.Register("jt_execute/ladder48_generic_loops", [&] {
    jt_plan_generic.Execute(jt_pcc.events());
  });

  // --- The same Execute under a (generous) budget: the governed pass
  // pays one BudgetMeter::Charge per bag — amortised clock reads, cell
  // accounting — and the budget/overhead row below pins that cost
  // against the un-governed row. The budget carries a real deadline and
  // cell cap so the meter takes the same branches a production-governed
  // query takes; it is sized to never trip.
  QueryBudget jt_budget = QueryBudget::WithDeadlineMs(3600.0 * 1000.0);
  jt_budget.max_table_cells = uint64_t{1} << 40;
  harness.Register("jt_execute/ladder48_governed", [&] {
    double governed_value = 0.0;
    jt_plan.ExecuteGoverned(jt_pcc.events(), {}, nullptr, jt_budget,
                            &governed_value);
  });

  // --- Batched evaluation: a 32-query battery over one lineage's
  // sub-gates (the question-selection workload: the marginal of every
  // internal hypothesis of one reachability lineage), sequentially vs
  // one ProbabilityBatch call. The cones coincide, so the batch runs as
  // a single calibrating pass over the shared decomposition.
  GateId battery_lineage =
      ladder_session.ReachabilityLineage(0, 0, 2 * rungs - 2);
  std::vector<GateId> battery_cone =
      ladder_session.pcc().circuit().ReachableFrom(battery_lineage);
  std::vector<GateId> battery;
  for (size_t i = 0; i < battery_cone.size() && battery.size() < 31;
       i += battery_cone.size() / 31) {
    battery.push_back(battery_cone[i]);
  }
  battery.push_back(battery_lineage);
  harness.Register("batch/sequential_32_queries", [&] {
    for (GateId g : battery) ladder_session.Probability(g);
  });
  harness.Register("batch/probability_batch_32", [&] {
    ladder_session.ProbabilityBatch(battery);
  });

  // --- A 32-target reachability battery ("which of these vertices
  // does the source reach?") on a path instance, compiled through the
  // target-indexed connectivity DP so each chunk's lineages share one
  // narrow cone: sequentially (one plan-cached pass per root) vs one
  // ProbabilityBatch call, which the batch cost model routes through
  // shared calibrating passes.
  const uint32_t path_n = 96;
  Rng path_rng(8);
  TidInstance path_tid(edge_schema);
  for (Value v = 0; v + 1 < path_n; ++v) {
    path_tid.AddFact(0, {v, v + 1}, 0.5 + 0.45 * path_rng.UniformDouble());
  }
  QuerySession path_session = QuerySession::FromCInstance(
      path_tid.ToPcInstance(),
      std::make_unique<JunctionTreeEngine>(
          /*seed_topological=*/false, /*cache_plans=*/true));
  std::vector<Value> path_targets;
  for (uint32_t k = 1; k <= 32; ++k) {
    path_targets.push_back(static_cast<Value>((k * (path_n - 1)) / 32));
  }
  std::vector<GateId> path_battery =
      path_session.ReachabilityLineageBatch(0, 0, path_targets);
  harness.Register("batch/reachability32_sequential", [&] {
    for (GateId g : path_battery) path_session.Probability(g);
  });
  harness.Register("batch/reachability32", [&] {
    path_session.ProbabilityBatch(path_battery);
  });

  std::vector<bench::BenchResult> results = harness.RunAll(min_ms);

  // Synthesize the budget/overhead row: bag-granularity governance cost
  // as a percentage of the un-governed Execute (the PR's acceptance pin
  // is < 2% on this workload).
  {
    const bench::BenchResult* ungoverned = nullptr;
    const bench::BenchResult* governed = nullptr;
    for (const bench::BenchResult& r : results) {
      if (r.name == "jt_execute/ladder48_small_bag_kernels") ungoverned = &r;
      if (r.name == "jt_execute/ladder48_governed") governed = &r;
    }
    if (ungoverned != nullptr && governed != nullptr &&
        ungoverned->ns_per_iter > 0) {
      bench::BenchResult overhead;
      overhead.name = "budget/overhead";
      overhead.ns_per_iter = governed->ns_per_iter - ungoverned->ns_per_iter;
      overhead.iters = governed->iters;
      overhead.counters = {
          {"governed_ns", governed->ns_per_iter},
          {"ungoverned_ns", ungoverned->ns_per_iter},
          {"overhead_pct", 100.0 *
                               (governed->ns_per_iter -
                                ungoverned->ns_per_iter) /
                               ungoverned->ns_per_iter}};
      results.push_back(std::move(overhead));
    }
  }
  if (!bench::Harness::WriteJson(results, out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace tud

int main(int argc, char** argv) { return tud::Main(argc, argv); }
