// Sustained-QPS serving benchmark: one prepared QuerySession, a
// zipfian-skewed mix over N distinct reachability lineages, served
// through ServingSession across 1..N worker threads. Emits serving/*
// rows (harness JSON, with qps / qps_per_core / threads counters) whose
// numbers the committed BENCH_automata.json quotes:
//
//   serving/direct_1thread/<spec>    sequential QuerySession::Probability
//   serving/zipf_<spec>/threads:T    ServingSession, T workers
//
// Usage: bench_serving_qps [num_queries] [output.json] [instance_spec]
//   num_queries    requests per timed run (default 20000)
//   output.json    harness-format output (default BENCH_serving_qps.json)
//   instance_spec  workload name, e.g. ladder:48 | ktree:64x2
//                  (default ladder:48)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "inference/engine.h"
#include "queries/query_session.h"
#include "serving/server.h"
#include "uncertain/c_instance.h"
#include "uncertain/tid_instance.h"
#include "workloads/workloads.h"

namespace tud {
namespace {

constexpr uint32_t kDistinctLineages = 64;
constexpr double kTheta = 0.99;  // YCSB default skew.

using clock_type = std::chrono::steady_clock;

double SecondsSince(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

/// Distinct (source, target) endpoint pairs near the spec's canonical
/// query: 8 sources x 8 targets.
std::vector<std::pair<uint32_t, uint32_t>> EndpointGrid(
    const workloads::InstanceSpec& spec) {
  auto [source0, target0] = workloads::CanonicalEndpoints(spec);
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  pairs.reserve(kDistinctLineages);
  for (uint32_t i = 0; i < kDistinctLineages; ++i) {
    uint32_t source = source0 + i / 8;
    uint32_t target = target0 - i % 8;
    pairs.emplace_back(source, std::min(target, target0));
  }
  return pairs;
}

bench::BenchResult Row(std::string name, double seconds, size_t queries,
                       unsigned threads) {
  bench::BenchResult r;
  r.name = std::move(name);
  r.iters = queries;
  r.ns_per_iter = seconds * 1e9 / static_cast<double>(queries);
  const double qps = static_cast<double>(queries) / seconds;
  r.counters = {{"qps", qps},
                {"qps_per_core", qps / threads},
                {"threads", static_cast<double>(threads)}};
  return r;
}

void PrintRow(const bench::BenchResult& r) {
  std::printf("%-44s %12.0f ns/query  %10.0f qps  %10.0f qps/core\n",
              r.name.c_str(), r.ns_per_iter, r.counters[0].second,
              r.counters[1].second);
}

int Main(int argc, char** argv) {
  const size_t num_queries =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 20000;
  const std::string out = argc > 2 ? argv[2] : "BENCH_serving_qps.json";
  const std::string spec_name = argc > 3 ? argv[3] : "ladder:48";

  auto spec = workloads::ParseInstanceSpec(spec_name);
  if (!spec.has_value()) {
    std::fprintf(stderr, "unknown instance spec: %s\n", spec_name.c_str());
    return 1;
  }

  // Prepare phase (single-threaded, untimed): instance, session, the
  // distinct lineages, and the skewed request mix over them.
  TidInstance tid = workloads::MakeInstance(*spec);
  QuerySession session = QuerySession::FromCInstance(
      tid.ToPcInstance(),
      std::make_unique<JunctionTreeEngine>(/*seed_topological=*/false,
                                           /*cache_plans=*/true));
  std::vector<GateId> lineages;
  for (auto [source, target] : EndpointGrid(*spec))
    lineages.push_back(session.ReachabilityLineage(0, source, target));
  std::vector<uint32_t> mix = workloads::ZipfianQueryMix(
      kDistinctLineages, num_queries, kTheta, /*seed=*/1234);

  // Warm every plan and compute the reference answers once, so every
  // timed run below measures only the steady-state numeric pass.
  std::vector<double> expected(lineages.size());
  for (size_t i = 0; i < lineages.size(); ++i)
    expected[i] = session.Probability(lineages[i]).value;

  std::vector<bench::BenchResult> results;

  // --- Baseline: the sequential hot loop serving code must not regress
  // (same cached-plan engine, no scheduler in the way).
  {
    const auto start = clock_type::now();
    double sink = 0;
    for (uint32_t q : mix) sink += session.Probability(lineages[q]).value;
    const double seconds = SecondsSince(start);
    if (!std::isfinite(sink)) std::abort();  // Keep the loop observable.
    results.push_back(Row("serving/direct_1thread/" + spec->Name(), seconds,
                          mix.size(), 1));
    PrintRow(results.back());
  }

  // --- The serving curve: same mix through ServingSession at 1..N
  // workers. Submission happens from this (external) thread, as in a
  // real frontend; workers execute from the shared plan cache.
  std::vector<unsigned> thread_counts = {1, 2, 4};
  unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0 && std::find(thread_counts.begin(), thread_counts.end(), hw) ==
                    thread_counts.end())
    thread_counts.push_back(hw);
  std::sort(thread_counts.begin(), thread_counts.end());

  for (unsigned threads : thread_counts) {
    serving::ServingOptions options;
    options.num_threads = threads;
    serving::ServingSession serving = serving::ServingSession::Over(session, options);
    for (GateId lineage : lineages) serving.Prewarm(lineage);

    std::vector<std::future<EngineResult>> futures(mix.size());
    const auto start = clock_type::now();
    for (size_t q = 0; q < mix.size(); ++q)
      futures[q] = serving.Submit(lineages[mix[q]]);
    serving.Drain();
    const double seconds = SecondsSince(start);

    for (size_t q = 0; q < mix.size(); ++q) {
      const double value = futures[q].get().value;
      if (value != expected[mix[q]]) {
        std::fprintf(stderr, "MISMATCH at query %zu: %.17g != %.17g\n", q,
                     value, expected[mix[q]]);
        return 1;
      }
    }
    results.push_back(Row("serving/zipf_" + spec->Name() +
                              "/threads:" + std::to_string(threads),
                          seconds, mix.size(), threads));
    PrintRow(results.back());
  }

  if (!bench::Harness::WriteJson(results, out)) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace tud

int main(int argc, char** argv) { return tud::Main(argc, argv); }
