// Order uncertainty (§3): integrating logs from two machines whose
// entries are internally ordered but carry no global timestamps. The
// merged relation is a po-relation; possible worlds are interleavings.
//
//   $ ./examples/log_integration

#include <cstdio>

#include "order/po_relation.h"
#include "relational/dictionary.h"

int main() {
  using namespace tud;

  Dictionary dict;
  auto v = [&](const char* s) { return dict.Intern(s); };

  // Each log: (machine, event) rows, in log order.
  PoRelation web = PoRelation::FromList(
      2, {{v("web"), v("start")},
          {v("web"), v("request")},
          {v("web"), v("crash")}});
  PoRelation db = PoRelation::FromList(
      2, {{v("db"), v("start")}, {v("db"), v("timeout")}});

  PoRelation merged = PoRelation::UnionParallel(web, db);
  std::printf("Merged log po-relation:\n%s\n",
              merged.ToString(dict).c_str());
  std::printf("Possible interleavings: %llu\n\n",
              static_cast<unsigned long long>(merged.CountWorlds()));

  std::printf("First three possible worlds:\n");
  int shown = 0;
  merged.EnumerateWorlds(
      [&](const std::vector<PoTuple>& world) {
        std::printf("  #%d:", ++shown);
        for (const PoTuple& t : world) {
          std::printf(" %s/%s", dict.name(t[0]).c_str(),
                      dict.name(t[1]).c_str());
        }
        std::printf("\n");
      },
      3);

  // Certain vs possible precedence: did the db timeout precede the web
  // crash? (web crash is occurrence 2; db timeout is occurrence 4).
  std::printf("\ncrash before timeout: certain=%d possible=%d\n",
              merged.CertainlyPrecedes(2, 4), merged.PossiblyPrecedes(2, 4));
  std::printf("web start before web crash: certain=%d\n",
              merged.CertainlyPrecedes(0, 2));

  // Was this observed global sequence actually consistent with both
  // logs? (possible-world membership).
  std::vector<PoTuple> observed = {
      {v("web"), v("start")}, {v("db"), v("start")},
      {v("web"), v("request")}, {v("db"), v("timeout")},
      {v("web"), v("crash")}};
  std::printf("\nobserved sequence is a possible world: %d\n",
              merged.IsPossibleWorld(observed));
  std::vector<PoTuple> impossible = {
      {v("web"), v("crash")}, {v("db"), v("start")},
      {v("web"), v("request")}, {v("db"), v("timeout")},
      {v("web"), v("start")}};
  std::printf("crash-first sequence is a possible world: %d\n",
              merged.IsPossibleWorld(impossible));

  // Algebra: project to event names, select the error-ish ones.
  PoRelation events = merged.Project({1});
  PoRelation errors = events.Select([&](const PoTuple& t) {
    return t[0] == dict.Intern("crash") || t[0] == dict.Intern("timeout");
  });
  std::printf("\nError events sub-relation has %llu possible orders "
              "(crash/timeout incomparable)\n",
              static_cast<unsigned long long>(errors.CountWorlds()));

  // Rank reasoning (the §3 "best guess" for order-incomplete data):
  // where does the web crash most likely sit in the merged timeline?
  std::vector<double> crash_rank = merged.order().RankDistribution(2);
  std::printf("\nPosition distribution of the web crash:\n");
  for (size_t i = 0; i < crash_rank.size(); ++i) {
    std::printf("  position %zu: %.3f\n", i, crash_rank[i]);
  }
  std::printf("expected position: %.3f\n",
              merged.order().ExpectedRank(2));

  // Top-k under order uncertainty: which events are certainly / possibly
  // among the first three?
  std::printf("\n%-18s %-14s %s\n", "event", "possibly top3",
              "certainly top3");
  for (OrderElem t = 0; t < merged.NumTuples(); ++t) {
    std::printf("%-8s/%-9s %-14d %d\n",
                dict.name(merged.tuple(t)[0]).c_str(),
                dict.name(merged.tuple(t)[1]).c_str(),
                merged.PossiblyInTopK(t, 3), merged.CertainlyInTopK(t, 3));
  }
  return 0;
}

