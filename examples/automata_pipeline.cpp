// The §2.2 machinery end to end: compile a query as a tree automaton,
// translate a PrXML document into an uncertain tree (FCNS over the
// ordinary skeleton), run the automaton symbolically to get a lineage
// circuit, and read off probabilities — plus Boolean combinations of
// automata via product/complement.
//
//   $ ./examples/automata_pipeline

#include <cstdio>

#include "automata/automaton_library.h"
#include "automata/provenance_run.h"
#include "inference/junction_tree.h"
#include "prxml/to_uncertain_tree.h"

int main() {
  using namespace tud;

  // A document: a catalog with two uncertain product entries.
  PrXmlDocument doc;
  EventId feed = doc.events().Register("feed_trusted", 0.8);
  PNodeId root = doc.AddRoot("catalog");
  for (int i = 0; i < 2; ++i) {
    PNodeId entry = doc.AddChild(root, PNodeKind::kOrdinary, "entry");
    PNodeId ind = doc.AddChild(entry, PNodeKind::kInd, "");
    PNodeId price = doc.AddChild(ind, PNodeKind::kOrdinary, "price");
    doc.SetEdgeProbability(price, i == 0 ? 0.9 : 0.4);
    PNodeId cie = doc.AddChild(entry, PNodeKind::kCie, "");
    PNodeId review = doc.AddChild(cie, PNodeKind::kOrdinary, "review");
    doc.SetEdgeLiterals(review, {{feed, true}});
  }
  doc.Finalize();

  // Translate once; build automata against the resulting alphabet.
  XmlLabelMap labels;
  Label dead;
  UncertainBinaryTree tree = PrXmlToUncertainTree(doc, labels, &dead);
  const Label alphabet = tree.AlphabetSize();
  std::printf("Uncertain tree: %zu binary nodes, alphabet %u, %zu gates\n\n",
              tree.NumNodes(), alphabet, tree.circuit().NumGates());

  auto prob = [&](const TreeAutomaton& automaton) {
    GateId lineage = ProvenanceRun(automaton, tree);
    return JunctionTreeProbability(tree.circuit(), lineage, doc.events());
  };

  TreeAutomaton has_price = MakeExistsLabel(alphabet, labels.Find("price"));
  TreeAutomaton has_review =
      MakeExistsLabel(alphabet, labels.Find("review"));
  TreeAutomaton two_prices =
      MakeCountAtLeast(alphabet, labels.Find("price"), 2);

  std::printf("P(some price)            = %.4f\n", prob(has_price));
  std::printf("P(both prices)           = %.4f   (0.9 * 0.4)\n",
              prob(two_prices));
  std::printf("P(some review)           = %.4f   (the shared feed event)\n",
              prob(has_review));

  // Boolean closure: price AND NOT review, via product + complement.
  TreeAutomaton combo = TreeAutomaton::Product(
      has_price, has_review.Complement(), /*conjunction=*/true);
  std::printf("P(price and no review)   = %.4f\n", prob(combo));

  // The automaton route and the direct computation agree:
  // P(price ∧ ¬review) = P(some price) * (1 - 0.8) by independence.
  double direct = prob(has_price) * 0.2;
  std::printf("  (independence check:     %.4f)\n", direct);
  return 0;
}
