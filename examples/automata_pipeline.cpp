// The §2.2 machinery end to end through the compiled-first API: state
// queries as AutomatonExpr combinators, translate a PrXML document into
// an uncertain tree, and let a TreeQuerySession compile each expression
// (compiled-to-compiled, never back through the std::map automaton),
// run it symbolically and read off probabilities.
//
//   $ ./examples/automata_pipeline

#include <cstdio>

#include "automata/automaton_expr.h"
#include "automata/automaton_library.h"
#include "prxml/to_uncertain_tree.h"
#include "queries/query_session.h"

int main() {
  using namespace tud;

  // A document: a catalog with two uncertain product entries.
  PrXmlDocument doc;
  EventId feed = doc.events().Register("feed_trusted", 0.8);
  PNodeId root = doc.AddRoot("catalog");
  for (int i = 0; i < 2; ++i) {
    PNodeId entry = doc.AddChild(root, PNodeKind::kOrdinary, "entry");
    PNodeId ind = doc.AddChild(entry, PNodeKind::kInd, "");
    PNodeId price = doc.AddChild(ind, PNodeKind::kOrdinary, "price");
    doc.SetEdgeProbability(price, i == 0 ? 0.9 : 0.4);
    PNodeId cie = doc.AddChild(entry, PNodeKind::kCie, "");
    PNodeId review = doc.AddChild(cie, PNodeKind::kOrdinary, "review");
    doc.SetEdgeLiterals(review, {{feed, true}});
  }
  doc.Finalize();

  // Translate once; the session owns the uncertain tree and caches
  // every expression it compiles.
  XmlLabelMap labels;
  Label dead;
  UncertainBinaryTree tree = PrXmlToUncertainTree(doc, labels, &dead);
  const Label alphabet = tree.AlphabetSize();
  std::printf("Uncertain tree: %zu binary nodes, alphabet %u, %zu gates\n\n",
              tree.NumNodes(), alphabet, tree.circuit().NumGates());
  TreeQuerySession session(std::move(tree), doc.events());

  // Queries as expressions over the automaton library.
  AutomatonExpr has_price =
      AutomatonExpr::Atom(MakeExistsLabel(alphabet, labels.Find("price")));
  AutomatonExpr has_review =
      AutomatonExpr::Atom(MakeExistsLabel(alphabet, labels.Find("review")));
  AutomatonExpr two_prices = AutomatonExpr::Atom(
      MakeCountAtLeast(alphabet, labels.Find("price"), 2));

  std::printf("P(some price)            = %.4f\n",
              session.Probability(has_price).value);
  std::printf("P(both prices)           = %.4f   (0.9 * 0.4)\n",
              session.Probability(two_prices).value);
  std::printf("P(some review)           = %.4f   (the shared feed event)\n",
              session.Probability(has_review).value);

  // Boolean closure: price AND NOT review — one combinator expression,
  // compiled product/complement end to end.
  AutomatonExpr combo = has_price && !has_review;
  std::printf("P(price and no review)   = %.4f\n",
              session.Probability(combo).value);

  // The automaton route and the direct computation agree:
  // P(price ∧ ¬review) = P(some price) * (1 - 0.8) by independence.
  double direct = session.Probability(has_price).value * 0.2;
  std::printf("  (independence check:     %.4f)\n", direct);

  // Evidence pinning through the same interface: the feed turns out
  // trustworthy, so reviews are certain.
  std::printf("P(some review | feed ok) = %.4f\n",
              session.Probability(has_review, {{feed, true}}).value);
  return 0;
}
