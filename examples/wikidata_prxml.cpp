// The paper's Figure 1: the PrXML document for the Wikidata entry of
// Chelsea Manning, with local (ind/mux) uncertainty and a global event
// eJane expressing correlated trust in one contributor.
//
//   $ ./examples/wikidata_prxml

#include <cstdio>

#include "inference/conditioning.h"
#include "inference/junction_tree.h"
#include "prxml/pattern_eval.h"
#include "prxml/prxml_document.h"
#include "prxml/tree_pattern.h"

int main() {
  using namespace tud;

  PrXmlDocument doc;
  EventId e_jane = doc.events().Register("eJane", 0.9);

  PNodeId root = doc.AddRoot("Q298423");

  PNodeId ind = doc.AddChild(root, PNodeKind::kInd, "");
  PNodeId occupation = doc.AddChild(ind, PNodeKind::kOrdinary, "occupation");
  doc.SetEdgeProbability(occupation, 0.4);
  doc.AddChild(occupation, PNodeKind::kOrdinary, "musician");

  PNodeId cie1 = doc.AddChild(root, PNodeKind::kCie, "");
  PNodeId pob = doc.AddChild(cie1, PNodeKind::kOrdinary, "place of birth");
  doc.SetEdgeLiterals(pob, {{e_jane, true}});
  doc.AddChild(pob, PNodeKind::kOrdinary, "Crescent");

  PNodeId cie2 = doc.AddChild(root, PNodeKind::kCie, "");
  PNodeId surname = doc.AddChild(cie2, PNodeKind::kOrdinary, "surname");
  doc.SetEdgeLiterals(surname, {{e_jane, true}});
  doc.AddChild(surname, PNodeKind::kOrdinary, "Manning");

  PNodeId given = doc.AddChild(root, PNodeKind::kOrdinary, "given name");
  PNodeId mux = doc.AddChild(given, PNodeKind::kMux, "");
  PNodeId bradley = doc.AddChild(mux, PNodeKind::kOrdinary, "Bradley");
  doc.SetEdgeProbability(bradley, 0.4);
  PNodeId chelsea = doc.AddChild(mux, PNodeKind::kOrdinary, "Chelsea");
  doc.SetEdgeProbability(chelsea, 0.6);

  doc.Finalize();

  std::printf("Figure 1 document: %zu nodes (%zu ordinary), %s, "
              "max event scope %zu\n\n",
              doc.NumNodes(), doc.NumOrdinaryNodes(),
              doc.IsLocal() ? "local" : "with global events",
              doc.MaxScopeSize());

  auto prob = [&](const TreePattern& pattern) {
    // PatternLineage is non-const (it adds gates); doc is ours.
    GateId lineage = PatternLineage(pattern, doc);
    return JunctionTreeProbability(doc.circuit(), lineage, doc.events());
  };

  std::printf("P(//musician)        = %.3f   (ind edge, 0.4)\n",
              prob(TreePattern::LabelExists("musician")));
  std::printf("P(//Chelsea)         = %.3f   (mux branch, 0.6)\n",
              prob(TreePattern::LabelExists("Chelsea")));
  std::printf("P(//Bradley)         = %.3f   (mux branch, 0.4)\n",
              prob(TreePattern::LabelExists("Bradley")));
  std::printf("P(//Manning)         = %.3f   (eJane trusted, 0.9)\n",
              prob(TreePattern::LabelExists("Manning")));

  TreePattern both;
  PatternNodeId pr = both.AddRoot("Q298423");
  both.AddChild(pr, "surname", PatternAxis::kChild);
  both.AddChild(pr, "place of birth", PatternAxis::kChild);
  std::printf("P(surname AND place of birth) = %.3f   "
              "(correlated via eJane: 0.9, not 0.81)\n\n",
              prob(both));

  // Conditioning (§4): observe that the surname IS present — then the
  // place of birth is certain too, because both hang off eJane.
  GateId surname_lineage =
      PatternLineage(TreePattern::LabelExists("Manning"), doc);
  GateId pob_lineage =
      PatternLineage(TreePattern::LabelExists("Crescent"), doc);
  auto conditioned = ConditionalProbability(doc.circuit(), pob_lineage,
                                            surname_lineage, doc.events());
  std::printf("P(place of birth | surname observed) = %.3f\n",
              conditioned.value_or(-1.0));
  return 0;
}
