// Quickstart: build a small tuple-independent database, open a
// QuerySession on it — the intended entry point: the instance's tree
// encoding is derived once and shared by every query — and ask the
// paper's running query q = ∃xy R(x) S(x,y) T(y) through the unified
// ProbabilityEngine interface, plus its Why-provenance.
//
//   $ ./examples/quickstart

#include <cstdio>
#include <memory>

#include "inference/engine.h"
#include "queries/conjunctive_query.h"
#include "queries/query_session.h"
#include "semiring/provenance_eval.h"
#include "semiring/semiring.h"
#include "uncertain/c_instance.h"
#include "uncertain/tid_instance.h"

int main() {
  using namespace tud;

  // 1. A schema and a TID instance: every fact is independently present
  //    with its probability.
  Schema schema;
  RelationId r = schema.AddRelation("R", 1);
  RelationId s = schema.AddRelation("S", 2);
  RelationId t = schema.AddRelation("T", 1);

  Dictionary dict;
  Value a = dict.Intern("a");
  Value b = dict.Intern("b");
  Value c = dict.Intern("c");

  TidInstance tid(schema);
  tid.AddFact(r, {a}, 0.9);
  tid.AddFact(s, {a, b}, 0.5);
  tid.AddFact(s, {b, c}, 0.7);
  tid.AddFact(r, {b}, 0.4);
  tid.AddFact(t, {b}, 0.8);
  tid.AddFact(t, {c}, 0.6);

  std::printf("Instance:\n%s\n", tid.instance().ToString(dict).c_str());

  // 2. A session owns the pcc-instance view and its tree encoding
  //    (Theorem 1 pipeline: decompose once, run the lineage DP per
  //    query). The default engine is the AutoEngine planner.
  QuerySession session = QuerySession::FromCInstance(tid.ToPcInstance());
  ConjunctiveQuery q = ConjunctiveQuery::RstPath(r, s, t);
  std::printf("Query: %s\n\n", q.ToString(schema).c_str());

  LineageStats stats;
  GateId lineage = session.CqLineage(q, &stats);
  std::printf("Lineage built over a width-%d decomposition, %zu DP states\n",
              stats.decomposition_width, stats.total_states);

  EngineResult planned = session.Probability(lineage);
  std::printf("P(q) = %.9f  (planner chose the %s engine)\n\n",
              planned.value, planned.engine);

  // 3. The same probability through every exact engine of the unified
  //    interface — one Estimate signature instead of five ad-hoc ones.
  ExhaustiveEngine exhaustive;
  JunctionTreeEngine message_passing(/*seed_topological=*/true);
  BddEngine bdd;
  ProbabilityEngine* engines[] = {&exhaustive, &message_passing, &bdd};
  for (ProbabilityEngine* engine : engines) {
    EngineResult result = engine->Estimate(
        session.pcc().circuit(), lineage, session.pcc().events());
    std::printf("P(q) by %-15s : %.9f\n", engine->name(), result.value);
  }

  // 4. Conditioning comes free with the interface: pin the first fact's
  //    event to false and re-ask.
  EngineResult conditioned = session.Probability(lineage, {{0, false}});
  std::printf("P(q | R(a) absent)       : %.9f\n\n", conditioned.value);

  // 5. Why-provenance from the same (monotone) lineage circuit.
  auto why = EvalMonotoneCircuit<WhySemiring>(
      session.pcc().circuit(), lineage,
      [](EventId e) { return WhySemiring::Value{{e}}; });
  std::printf("Why-provenance (minimal witness sets of fact events):\n  %s\n",
              WhySemiring::ToString(why, session.pcc().events()).c_str());
  return 0;
}
