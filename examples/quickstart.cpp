// Quickstart: build a small tuple-independent database, ask the paper's
// running query q = ∃xy R(x) S(x,y) T(y), and compute its probability
// exactly three independent ways — plus its Why-provenance.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "bdd/bdd.h"
#include "inference/exhaustive.h"
#include "inference/junction_tree.h"
#include "queries/conjunctive_query.h"
#include "queries/lineage.h"
#include "semiring/provenance_eval.h"
#include "semiring/semiring.h"
#include "uncertain/c_instance.h"
#include "uncertain/pcc_instance.h"
#include "uncertain/tid_instance.h"

int main() {
  using namespace tud;

  // 1. A schema and a TID instance: every fact is independently present
  //    with its probability.
  Schema schema;
  RelationId r = schema.AddRelation("R", 1);
  RelationId s = schema.AddRelation("S", 2);
  RelationId t = schema.AddRelation("T", 1);

  Dictionary dict;
  Value a = dict.Intern("a");
  Value b = dict.Intern("b");
  Value c = dict.Intern("c");

  TidInstance tid(schema);
  tid.AddFact(r, {a}, 0.9);
  tid.AddFact(s, {a, b}, 0.5);
  tid.AddFact(s, {b, c}, 0.7);
  tid.AddFact(r, {b}, 0.4);
  tid.AddFact(t, {b}, 0.8);
  tid.AddFact(t, {c}, 0.6);

  std::printf("Instance:\n%s\n", tid.instance().ToString(dict).c_str());

  // 2. The query and its lineage over the pcc-instance view (Theorem 1
  //    pipeline: decompose, run the DP, get a circuit).
  PccInstance pcc = PccInstance::FromCInstance(tid.ToPcInstance());
  ConjunctiveQuery q = ConjunctiveQuery::RstPath(r, s, t);
  std::printf("Query: %s\n\n", q.ToString(schema).c_str());

  LineageStats stats;
  GateId lineage = ComputeCqLineage(q, pcc, &stats);
  std::printf("Lineage built over a width-%d decomposition, %zu DP states\n",
              stats.decomposition_width, stats.total_states);

  // 3. Probability, three ways.
  double exhaustive =
      ExhaustiveProbability(pcc.circuit(), lineage, pcc.events());
  double message_passing =
      JunctionTreeProbability(pcc.circuit(), lineage, pcc.events());

  BddManager bdd(static_cast<uint32_t>(pcc.events().size()));
  std::vector<uint32_t> levels(pcc.events().size());
  std::vector<double> probs(pcc.events().size());
  for (EventId e = 0; e < pcc.events().size(); ++e) {
    levels[e] = e;
    probs[e] = pcc.events().probability(e);
  }
  double wmc = bdd.Wmc(bdd.FromCircuit(pcc.circuit(), lineage, levels), probs);

  std::printf("P(q) by world enumeration : %.9f\n", exhaustive);
  std::printf("P(q) by message passing   : %.9f\n", message_passing);
  std::printf("P(q) by BDD compilation   : %.9f\n\n", wmc);

  // 4. Why-provenance from the same (monotone) lineage circuit.
  auto why = EvalMonotoneCircuit<WhySemiring>(
      pcc.circuit(), lineage,
      [](EventId e) { return WhySemiring::Value{{e}}; });
  std::printf("Why-provenance (minimal witness sets of fact events):\n  %s\n",
              WhySemiring::ToString(why, pcc.events()).c_str());
  return 0;
}
