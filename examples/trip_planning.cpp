// The paper's Table 1: a c-instance of trips to book depending on which
// conferences (PODS in Melbourne, STOC in Portland) the researcher
// attends. Demonstrates possibility, certainty, probability and
// conditioning on c/pc-instances.
//
//   $ ./examples/trip_planning

#include <cstdio>

#include "inference/conditioning.h"
#include "inference/junction_tree.h"
#include "queries/conjunctive_query.h"
#include "queries/lineage.h"
#include "uncertain/c_instance.h"
#include "uncertain/pcc_instance.h"

int main() {
  using namespace tud;

  Schema schema;
  RelationId trip = schema.AddRelation("Trip", 2);

  Dictionary dict;
  Value cdg = dict.Intern("Paris_CDG");
  Value mel = dict.Intern("Melbourne_MEL");
  Value pdx = dict.Intern("Portland_PDX");

  CInstance ci(schema);
  EventId pods = ci.events().Register("pods", 0.7);  // Likely attends PODS.
  ci.events().Register("stoc", 0.4);

  auto annot = [&](const char* text) {
    auto f = BoolFormula::Parse(text, ci.events());
    return *f;
  };
  // Table 1, row by row.
  ci.AddFact(trip, {cdg, mel}, annot("pods"));
  ci.AddFact(trip, {mel, cdg}, annot("pods & !stoc"));
  ci.AddFact(trip, {mel, pdx}, annot("pods & stoc"));
  ci.AddFact(trip, {cdg, pdx}, annot("!pods & stoc"));
  ci.AddFact(trip, {pdx, cdg}, annot("stoc"));

  std::printf("Table 1 c-instance (events: pods p=0.7, stoc p=0.4):\n");
  for (FactId f = 0; f < ci.NumFacts(); ++f) {
    const Fact& fact = ci.instance().fact(f);
    std::printf("  Trip(%-13s -> %-13s)  [%s]  possible=%d certain=%d\n",
                dict.name(fact.args[0]).c_str(),
                dict.name(fact.args[1]).c_str(),
                ci.annotation(f).ToString(ci.events()).c_str(),
                ci.IsPossible(f), ci.IsCertain(f));
  }

  // Query: is some leg into Portland booked? q = ∃x Trip(x, PDX).
  PccInstance pcc = PccInstance::FromCInstance(ci);
  ConjunctiveQuery q;
  q.AddAtom(trip, {Term::V(0), Term::C(pdx)});
  GateId lineage = ComputeCqLineage(q, pcc);
  double p = JunctionTreeProbability(pcc.circuit(), lineage, pcc.events());
  std::printf("\nP(some trip lands in Portland) = %.4f  (= P(stoc))\n", p);

  // Conditioning (§4): the researcher's PODS paper got in (pods = true).
  CInstance given_pods = ConditionOnEventLiteral(ci, pods, true);
  std::printf("\nAfter conditioning on pods = true:\n");
  std::printf("  Trip(CDG->MEL) certain: %d\n", given_pods.IsCertain(0));
  PccInstance pcc2 = PccInstance::FromCInstance(given_pods);
  GateId lineage2 = ComputeCqLineage(q, pcc2);
  std::printf("  P(some trip lands in Portland | pods) = %.4f\n",
              JunctionTreeProbability(pcc2.circuit(), lineage2,
                                      pcc2.events()));

  // Round-trip query: fly out of CDG and eventually back into CDG.
  ConjunctiveQuery round_trip;
  round_trip.AddAtom(trip, {Term::C(cdg), Term::V(0)});
  round_trip.AddAtom(trip, {Term::V(1), Term::C(cdg)});
  GateId rt = ComputeCqLineage(round_trip, pcc);
  std::printf("\nP(leave CDG and some leg returns to CDG) = %.4f\n",
              JunctionTreeProbability(pcc.circuit(), rt, pcc.events()));
  return 0;
}
