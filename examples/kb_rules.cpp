// Probabilistic rules (§2.3): enriching an incomplete knowledge base
// with soft rules ("a citizen of a country probably lives there, and
// probably speaks its official language"), then querying the chased
// pc-instance.
//
//   $ ./examples/kb_rules

#include <cstdio>

#include "inference/junction_tree.h"
#include "rules/chase.h"
#include "uncertain/pcc_instance.h"

int main() {
  using namespace tud;

  Schema schema;
  RelationId citizen = schema.AddRelation("CitizenOf", 2);
  RelationId lives = schema.AddRelation("LivesIn", 2);
  RelationId lang = schema.AddRelation("Language", 2);
  RelationId speaks = schema.AddRelation("Speaks", 2);

  Dictionary dict;
  Value alice = dict.Intern("alice");
  Value bob = dict.Intern("bob");
  Value france = dict.Intern("france");
  Value peru = dict.Intern("peru");
  Value french = dict.Intern("french");
  Value spanish = dict.Intern("spanish");

  CInstance kb(schema);
  kb.AddFact(citizen, {alice, france}, BoolFormula::True());
  kb.AddFact(citizen, {bob, peru}, BoolFormula::True());
  kb.AddFact(lang, {france, french}, BoolFormula::True());
  kb.AddFact(lang, {peru, spanish}, BoolFormula::True());
  // One extracted fact is itself uncertain.
  EventId extractor = kb.events().Register("extractor_ok", 0.7);
  kb.AddFact(citizen, {bob, france}, BoolFormula::Var(extractor));

  std::vector<Rule> rules = {
      // CitizenOf(p, c) -> LivesIn(p, c), applies in 80% of cases.
      MakeRule("lives",
               {{citizen, {Term::V(0), Term::V(1)}}},
               {{lives, {Term::V(0), Term::V(1)}}}, 0.8),
      // LivesIn(p, c) & Language(c, l) -> Speaks(p, l), 90%.
      MakeRule("speaks",
               {{lives, {Term::V(0), Term::V(1)}},
                {lang, {Term::V(1), Term::V(2)}}},
               {{speaks, {Term::V(0), Term::V(2)}}}, 0.9),
  };

  ChaseResult result = ProbabilisticChase(kb, rules, dict);
  std::printf("Chase: %zu firings over %u round(s), %zu facts, %zu events\n\n",
              result.num_firings, result.rounds_run,
              result.instance.NumFacts(), result.instance.events().size());

  const CInstance& chased = result.instance;
  std::printf("%-30s %-28s %s\n", "fact", "annotation", "probability");
  for (FactId f = 0; f < chased.NumFacts(); ++f) {
    const Fact& fact = chased.instance().fact(f);
    std::string shown = schema.name(fact.relation) + "(" +
                        dict.name(fact.args[0]) + ", " +
                        dict.name(fact.args[1]) + ")";
    BoolCircuit c;
    GateId g = c.AddFormula(chased.annotation(f));
    double p = JunctionTreeProbability(c, g, chased.events());
    std::string ann = chased.annotation(f).ToString(chased.events());
    if (ann.size() > 26) ann = ann.substr(0, 23) + "...";
    std::printf("%-30s %-28s %.4f\n", shown.c_str(), ann.c_str(), p);
  }

  std::printf(
      "\nNote how Speaks(bob, french) combines the uncertain extraction\n"
      "(0.7), the lives rule (0.8) and the speaks rule (0.9): its\n"
      "probability is the product, while facts derivable in multiple\n"
      "ways would combine as a noisy-or of their derivations.\n");
  return 0;
}
