// Conditioning with a simulated crowd (§4): a Wikidata-style document
// with several untrusted contributors; we iteratively pick the most
// informative contributor to ask a (noiseless) oracle about, condition
// on the answer, and watch the query's entropy fall — versus asking at
// random.
//
//   $ ./examples/crowd_conditioning

#include <algorithm>
#include <cstdio>
#include <vector>

#include "inference/conditioning.h"
#include "inference/junction_tree.h"
#include "prxml/pattern_eval.h"
#include "prxml/prxml_document.h"
#include "prxml/tree_pattern.h"
#include "util/rng.h"

int main() {
  using namespace tud;
  Rng rng(2026);

  // Document: one entity; five contributors each asserted one claim;
  // the query pattern needs claims 0 AND 1 (the others are noise).
  PrXmlDocument doc;
  std::vector<EventId> contributors;
  for (int i = 0; i < 5; ++i) {
    contributors.push_back(doc.events().Register(
        "contributor" + std::to_string(i), 0.5));
  }
  PNodeId root = doc.AddRoot("entity");
  const char* labels[] = {"surname", "birthplace", "occupation", "award",
                          "website"};
  for (int i = 0; i < 5; ++i) {
    PNodeId cie = doc.AddChild(root, PNodeKind::kCie, "");
    PNodeId claim = doc.AddChild(cie, PNodeKind::kOrdinary, labels[i]);
    doc.SetEdgeLiterals(claim, {{contributors[i], true}});
  }
  doc.Finalize();

  TreePattern pattern;
  PatternNodeId pr = pattern.AddRoot("entity");
  pattern.AddChild(pr, "surname", PatternAxis::kChild);
  pattern.AddChild(pr, "birthplace", PatternAxis::kChild);
  GateId query = PatternLineage(pattern, doc);

  // Hidden ground truth the oracle answers from.
  Valuation truth = Valuation::Sample(doc.events(), rng);
  std::printf("Hidden truth: %s\n\n",
              truth.ToString(doc.events()).c_str());

  // Greedy entropy-minimising questioning.
  std::vector<EventId> askable = contributors;
  std::vector<std::pair<EventId, bool>> answers;
  std::printf("%-5s %-14s %-10s %-10s\n", "step", "asked", "P(query)",
              "entropy");
  for (int step = 0; !askable.empty(); ++step) {
    double p = answers.empty()
                   ? JunctionTreeProbability(doc.circuit(), query,
                                             doc.events())
                   : JunctionTreeProbabilityWithEvidence(
                         doc.circuit(), query, doc.events(), answers);
    std::printf("%-5d %-14s %-10.4f %-10.4f\n", step,
                step == 0 ? "-" : doc.events().name(answers.back().first)
                                       .c_str(),
                p, BinaryEntropy(p));
    if (BinaryEntropy(p) < 1e-9) {
      std::printf("\nQuery resolved after %d question(s).\n", step);
      break;
    }
    // Pick the best next question among the remaining askable events,
    // taking already-gathered answers into account by conditioning the
    // candidate probabilities on them.
    EventId best = askable[0];
    double best_expected = 2.0;
    for (EventId e : askable) {
      auto with = answers;
      with.emplace_back(e, true);
      double pt = JunctionTreeProbabilityWithEvidence(doc.circuit(), query,
                                                      doc.events(), with);
      with.back().second = false;
      double pf = JunctionTreeProbabilityWithEvidence(doc.circuit(), query,
                                                      doc.events(), with);
      double pe = doc.events().probability(e);
      double expected =
          pe * BinaryEntropy(pt) + (1 - pe) * BinaryEntropy(pf);
      if (expected < best_expected) {
        best_expected = expected;
        best = e;
      }
    }
    // Ask the oracle and record the answer.
    answers.emplace_back(best, truth.value(best));
    askable.erase(std::find(askable.begin(), askable.end(), best));
  }
  return 0;
}
