// Equivalence suite for the compiled (bitset-table) automaton engine:
// every operation is cross-checked against the legacy std::set /
// std::map implementations on randomized automata and trees, and the
// rewritten provenance run is checked world-by-world against the legacy
// construction on exhaustive small worlds.

#include <set>
#include <string>
#include <vector>

#include "automata/automaton_library.h"
#include "automata/binary_tree.h"
#include "automata/compiled_automaton.h"
#include "automata/provenance_run.h"
#include "automata/state_set.h"
#include "automata/tree_automaton.h"
#include "automata/uncertain_tree.h"
#include "events/event_registry.h"
#include "events/valuation.h"
#include "gtest/gtest.h"
#include "util/rng.h"

namespace tud {
namespace {

// A random NTA: every (label, ql, qr) key independently gets 0-2
// targets, every label a random set of leaf states, and a random
// nonempty set of accepting states.
TreeAutomaton RandomAutomaton(Rng& rng, uint32_t num_states,
                              Label alphabet) {
  TreeAutomaton a(num_states, alphabet);
  for (Label l = 0; l < alphabet; ++l) {
    for (State q = 0; q < num_states; ++q) {
      if (rng.Bernoulli(0.4)) a.AddLeafTransition(l, q);
    }
    for (State ql = 0; ql < num_states; ++ql) {
      for (State qr = 0; qr < num_states; ++qr) {
        uint64_t count = rng.UniformInt(3);
        for (uint64_t i = 0; i < count; ++i) {
          a.AddTransition(l, ql, qr,
                          static_cast<State>(rng.UniformInt(num_states)));
        }
      }
    }
  }
  a.SetAccepting(static_cast<State>(rng.UniformInt(num_states)));
  if (rng.Bernoulli(0.5)) {
    a.SetAccepting(static_cast<State>(rng.UniformInt(num_states)));
  }
  return a;
}

BinaryTree RandomTree(Rng& rng, uint32_t num_internal, Label alphabet) {
  BinaryTree t;
  std::vector<TreeNodeId> roots;
  for (uint32_t i = 0; i < num_internal + 1; ++i) {
    roots.push_back(t.AddLeaf(static_cast<Label>(rng.UniformInt(alphabet))));
  }
  while (roots.size() > 1) {
    size_t i = rng.UniformInt(roots.size());
    TreeNodeId a = roots[i];
    roots.erase(roots.begin() + i);
    size_t j = rng.UniformInt(roots.size());
    TreeNodeId b = roots[j];
    roots[j] =
        t.AddInternal(static_cast<Label>(rng.UniformInt(alphabet)), a, b);
  }
  return t;
}

class CompiledEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(CompiledEquivalenceTest, RunAcceptanceMatchesLegacy) {
  Rng rng(GetParam());
  const Label alphabet = 2 + static_cast<Label>(rng.UniformInt(3));
  const uint32_t states = 1 + static_cast<uint32_t>(rng.UniformInt(6));
  TreeAutomaton a = RandomAutomaton(rng, states, alphabet);
  CompiledAutomaton compiled = CompiledAutomaton::Compile(a);
  for (int t = 0; t < 20; ++t) {
    BinaryTree tree =
        RandomTree(rng, static_cast<uint32_t>(rng.UniformInt(20)), alphabet);
    EXPECT_EQ(compiled.Accepts(tree), a.AcceptsLegacy(tree));
    EXPECT_EQ(a.Accepts(tree), a.AcceptsLegacy(tree));
  }
}

TEST_P(CompiledEquivalenceTest, ReachableWordsMatchSetRun) {
  Rng rng(GetParam() + 100);
  const Label alphabet = 2 + static_cast<Label>(rng.UniformInt(2));
  const uint32_t states = 1 + static_cast<uint32_t>(rng.UniformInt(6));
  TreeAutomaton a = RandomAutomaton(rng, states, alphabet);
  CompiledAutomaton compiled = CompiledAutomaton::Compile(a);
  BinaryTree tree =
      RandomTree(rng, 1 + static_cast<uint32_t>(rng.UniformInt(15)),
                 alphabet);
  std::vector<std::set<State>> reference = a.ReachableStates(tree);
  std::vector<uint64_t> words = compiled.ReachableWords(tree);
  ASSERT_EQ(reference.size(), tree.NumNodes());
  for (TreeNodeId n = 0; n < tree.NumNodes(); ++n) {
    std::set<State> from_words;
    ForEachSetBit(words.data() + n * compiled.num_words(),
                  compiled.num_words(),
                  [&](State q) { from_words.insert(q); });
    EXPECT_EQ(from_words, reference[n]) << "node " << n;
  }
}

TEST_P(CompiledEquivalenceTest, ProductAndUnionMatchLegacy) {
  Rng rng(GetParam() + 200);
  const Label alphabet = 2;
  TreeAutomaton a = RandomAutomaton(
      rng, 1 + static_cast<uint32_t>(rng.UniformInt(4)), alphabet);
  TreeAutomaton b = RandomAutomaton(
      rng, 1 + static_cast<uint32_t>(rng.UniformInt(4)), alphabet);
  for (bool conjunction : {true, false}) {
    TreeAutomaton fast = TreeAutomaton::Product(a, b, conjunction);
    TreeAutomaton legacy = TreeAutomaton::ProductLegacy(a, b, conjunction);
    for (int t = 0; t < 20; ++t) {
      BinaryTree tree = RandomTree(
          rng, static_cast<uint32_t>(rng.UniformInt(15)), alphabet);
      EXPECT_EQ(fast.AcceptsLegacy(tree), legacy.AcceptsLegacy(tree))
          << (conjunction ? "conjunction" : "union");
    }
  }
}

TEST_P(CompiledEquivalenceTest, DeterminizeAndComplementMatchLegacy) {
  Rng rng(GetParam() + 300);
  const Label alphabet = 2 + static_cast<Label>(rng.UniformInt(2));
  TreeAutomaton a = RandomAutomaton(
      rng, 1 + static_cast<uint32_t>(rng.UniformInt(5)), alphabet);
  TreeAutomaton det = a.Determinize();
  TreeAutomaton det_legacy = a.DeterminizeLegacy();
  TreeAutomaton complement = a.Complement();
  EXPECT_EQ(det.num_states(), det_legacy.num_states());
  for (int t = 0; t < 20; ++t) {
    BinaryTree tree =
        RandomTree(rng, static_cast<uint32_t>(rng.UniformInt(15)), alphabet);
    const bool expected = a.AcceptsLegacy(tree);
    EXPECT_EQ(det.AcceptsLegacy(tree), expected);
    EXPECT_EQ(det_legacy.AcceptsLegacy(tree), expected);
    EXPECT_EQ(complement.AcceptsLegacy(tree), !expected);
    // The subset construction must be deterministic and complete:
    // exactly one state reachable at every node.
    CompiledAutomaton cdet = CompiledAutomaton::Compile(det);
    std::vector<uint64_t> words = cdet.ReachableWords(tree);
    for (TreeNodeId n = 0; n < tree.NumNodes(); ++n) {
      uint32_t count = 0;
      ForEachSetBit(words.data() + n * cdet.num_words(), cdet.num_words(),
                    [&](State) { ++count; });
      EXPECT_EQ(count, 1u) << "node " << n;
    }
  }
}

TEST_P(CompiledEquivalenceTest, EmptinessConsistentWithAcceptance) {
  Rng rng(GetParam() + 400);
  const Label alphabet = 2;
  TreeAutomaton a = RandomAutomaton(
      rng, 1 + static_cast<uint32_t>(rng.UniformInt(4)), alphabet);
  if (a.IsEmpty()) {
    for (int t = 0; t < 30; ++t) {
      BinaryTree tree = RandomTree(
          rng, static_cast<uint32_t>(rng.UniformInt(12)), alphabet);
      EXPECT_FALSE(a.AcceptsLegacy(tree));
    }
  }
  // A tautological library automaton is never empty, and conjoining an
  // automaton with its complement always is.
  TreeAutomaton exists = MakeExistsLabel(alphabet, 1);
  EXPECT_FALSE(exists.IsEmpty());
  EXPECT_TRUE(
      TreeAutomaton::Product(exists, exists.Complement(), true).IsEmpty());
}

// Uncertain tree whose node labels flip between two letters guarded by
// one event per node (as in automata_test.cc).
UncertainBinaryTree FlipTree(Rng& rng, uint32_t num_internal,
                             EventRegistry& registry) {
  UncertainBinaryTree t;
  uint32_t next_event = 0;
  auto make_alts = [&]() {
    EventId e = next_event++;
    registry.Register("n" + std::to_string(e),
                      0.2 + 0.6 * rng.UniformDouble());
    GateId var = t.circuit().AddVar(e);
    GateId not_var = t.circuit().AddNot(var);
    return std::vector<std::pair<Label, GateId>>{{0, not_var}, {1, var}};
  };
  std::vector<TreeNodeId> roots;
  for (uint32_t i = 0; i < num_internal + 1; ++i) {
    roots.push_back(t.AddLeaf(make_alts()));
  }
  while (roots.size() > 1) {
    size_t i = rng.UniformInt(roots.size());
    TreeNodeId a = roots[i];
    roots.erase(roots.begin() + i);
    size_t j = rng.UniformInt(roots.size());
    TreeNodeId b = roots[j];
    roots[j] = t.AddInternal(make_alts(), a, b);
  }
  return t;
}

TEST_P(CompiledEquivalenceTest, ProvenanceCircuitMatchesLegacyOnAllWorlds) {
  Rng rng(GetParam() + 500);
  EventRegistry registry;
  UncertainBinaryTree tree =
      FlipTree(rng, 2 + static_cast<uint32_t>(rng.UniformInt(4)), registry);
  const size_t num_events = registry.size();
  ASSERT_LE(num_events, 16u);

  TreeAutomaton automata[] = {
      RandomAutomaton(rng, 1 + static_cast<uint32_t>(rng.UniformInt(4)), 2),
      MakeExistsLabelNondet(2, 1),
      MakeCountAtLeast(2, 1, 2),
  };
  for (TreeAutomaton& a : automata) {
    GateId fast = ProvenanceRun(a, tree);
    GateId legacy = ProvenanceRunLegacy(a, tree);
    for (uint64_t mask = 0; mask < (uint64_t{1} << num_events); ++mask) {
      Valuation v = Valuation::FromMask(mask, num_events);
      ASSERT_TRUE(tree.IsWellFormedUnder(v));
      const bool accepted = a.AcceptsLegacy(tree.World(v));
      EXPECT_EQ(tree.circuit().Evaluate(fast, v), accepted) << mask;
      EXPECT_EQ(tree.circuit().Evaluate(legacy, v), accepted) << mask;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledEquivalenceTest,
                         ::testing::Range(0, 16));

// Direct StateSet coverage: the word-level primitives the engine leans
// on.
TEST(StateSetTest, BasicOperations) {
  StateSet s(130);
  EXPECT_EQ(s.num_words(), 3u);
  EXPECT_FALSE(s.Any());
  s.Set(0);
  s.Set(64);
  s.Set(129);
  EXPECT_TRUE(s.Test(64));
  EXPECT_FALSE(s.Test(63));
  EXPECT_EQ(s.Count(), 3u);
  std::vector<uint32_t> seen;
  s.ForEach([&](State q) { seen.push_back(q); });
  EXPECT_EQ(seen, (std::vector<uint32_t>{0, 64, 129}));

  StateSet other(130);
  other.Set(64);
  EXPECT_TRUE(s.Intersects(other));
  other.Clear();
  other.Set(1);
  EXPECT_FALSE(s.Intersects(other));
  s.OrWith(other);
  EXPECT_TRUE(s.Test(1));
  EXPECT_NE(s.Hash(), other.Hash());
}

TEST(CompiledAutomatonTest, RoundTripPreservesLanguage) {
  Rng rng(7);
  TreeAutomaton a = RandomAutomaton(rng, 4, 3);
  TreeAutomaton round =
      CompiledAutomaton::Compile(a).ToTreeAutomaton();
  for (int t = 0; t < 25; ++t) {
    BinaryTree tree =
        RandomTree(rng, static_cast<uint32_t>(rng.UniformInt(15)), 3);
    EXPECT_EQ(round.AcceptsLegacy(tree), a.AcceptsLegacy(tree));
  }
}

}  // namespace
}  // namespace tud
