#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "inference/exhaustive.h"
#include "inference/junction_tree.h"
#include "queries/reachability.h"
#include "uncertain/c_instance.h"
#include "uncertain/pcc_instance.h"
#include "uncertain/tid_instance.h"
#include "util/rng.h"

namespace tud {
namespace {

Schema EdgeSchema() {
  Schema schema;
  schema.AddRelation("E", 2);
  return schema;
}

TEST(ReachabilityEvalTest, BfsGroundTruth) {
  Instance instance(EdgeSchema());
  instance.AddFact(0, {0, 1});
  instance.AddFact(0, {1, 2});
  instance.AddFact(0, {4, 5});
  EXPECT_TRUE(EvaluateReachability(instance, 0, 0, 2));
  EXPECT_TRUE(EvaluateReachability(instance, 0, 2, 0));  // Undirected.
  EXPECT_FALSE(EvaluateReachability(instance, 0, 0, 4));
  EXPECT_TRUE(EvaluateReachability(instance, 0, 3, 3));  // Trivial.
  EXPECT_FALSE(EvaluateReachability(instance, 0, 0, 99));
}

TEST(ReachabilityLineageTest, SingleEdge) {
  TidInstance tid(EdgeSchema());
  tid.AddFact(0, {0, 1}, 0.4);
  PccInstance pcc = PccInstance::FromCInstance(tid.ToPcInstance());
  GateId lineage = ComputeReachabilityLineage(pcc, 0, 0, 1);
  EXPECT_NEAR(JunctionTreeProbability(pcc.circuit(), lineage, pcc.events()),
              0.4, 1e-12);
}

TEST(ReachabilityLineageTest, TwoParallelPaths) {
  // 0-1-3 and 0-2-3: P = 1 - (1 - p01*p13)(1 - p02*p23).
  TidInstance tid(EdgeSchema());
  tid.AddFact(0, {0, 1}, 0.5);
  tid.AddFact(0, {1, 3}, 0.5);
  tid.AddFact(0, {0, 2}, 0.5);
  tid.AddFact(0, {2, 3}, 0.5);
  PccInstance pcc = PccInstance::FromCInstance(tid.ToPcInstance());
  GateId lineage = ComputeReachabilityLineage(pcc, 0, 0, 3);
  double expected = 1.0 - (1 - 0.25) * (1 - 0.25);
  EXPECT_NEAR(JunctionTreeProbability(pcc.circuit(), lineage, pcc.events()),
              expected, 1e-12);
}

TEST(ReachabilityLineageTest, TrivialAndUnreachableCases) {
  TidInstance tid(EdgeSchema());
  tid.AddFact(0, {0, 1}, 0.5);
  PccInstance pcc = PccInstance::FromCInstance(tid.ToPcInstance());
  GateId same = ComputeReachabilityLineage(pcc, 0, 1, 1);
  EXPECT_TRUE(pcc.circuit().const_value(same));
  GateId out_of_domain = ComputeReachabilityLineage(pcc, 0, 0, 7);
  EXPECT_FALSE(pcc.circuit().const_value(out_of_domain));
}

TEST(ReachabilityLineageTest, SelfLoopsAndDuplicateEdgesHandled) {
  TidInstance tid(EdgeSchema());
  tid.AddFact(0, {0, 0}, 0.9);  // Self-loop: irrelevant.
  tid.AddFact(0, {0, 1}, 0.5);
  tid.AddFact(0, {0, 1}, 0.5);  // Duplicate edge: independent copy.
  PccInstance pcc = PccInstance::FromCInstance(tid.ToPcInstance());
  GateId lineage = ComputeReachabilityLineage(pcc, 0, 0, 1);
  EXPECT_NEAR(JunctionTreeProbability(pcc.circuit(), lineage, pcc.events()),
              0.75, 1e-12);
}

// Random graphs: the lineage agrees with per-world BFS on every
// valuation, and the probability agrees with enumeration.
class ReachabilityPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ReachabilityPropertyTest, LineageMatchesBfsWorldByWorld) {
  Rng rng(GetParam());
  const uint32_t n = 5 + static_cast<uint32_t>(rng.UniformInt(3));
  TidInstance tid(EdgeSchema());
  // Sparse random graph (keeps treewidth small and events <= 13).
  uint32_t edges = 0;
  for (Value a = 0; a < n && edges < 13; ++a) {
    for (Value b = a + 1; b < n && edges < 13; ++b) {
      if (rng.Bernoulli(0.35)) {
        tid.AddFact(0, {a, b}, 0.2 + 0.6 * rng.UniformDouble());
        ++edges;
      }
    }
  }
  PccInstance pcc = PccInstance::FromCInstance(tid.ToPcInstance());
  const size_t num_events = pcc.events().size();
  Value source = static_cast<Value>(rng.UniformInt(n));
  Value target = static_cast<Value>(rng.UniformInt(n));
  GateId lineage = ComputeReachabilityLineage(pcc, 0, source, target);
  for (uint64_t mask = 0; mask < (1ULL << num_events); ++mask) {
    Valuation v = Valuation::FromMask(mask, num_events);
    EXPECT_EQ(pcc.circuit().Evaluate(lineage, v),
              EvaluateReachability(pcc.World(v), 0, source, target))
        << "mask=" << mask << " s=" << source << " t=" << target;
  }
}

TEST_P(ReachabilityPropertyTest, ProbabilityMatchesEnumeration) {
  Rng rng(GetParam() + 700);
  TidInstance tid(EdgeSchema());
  // A path with chords.
  const uint32_t n = 6;
  for (Value v = 0; v + 1 < n; ++v) {
    tid.AddFact(0, {v, v + 1}, 0.3 + 0.5 * rng.UniformDouble());
  }
  for (int c = 0; c < 3; ++c) {
    Value a = static_cast<Value>(rng.UniformInt(n));
    Value b = static_cast<Value>(rng.UniformInt(n));
    if (a != b) tid.AddFact(0, {a, b}, 0.3 + 0.5 * rng.UniformDouble());
  }
  PccInstance pcc = PccInstance::FromCInstance(tid.ToPcInstance());
  GateId lineage = ComputeReachabilityLineage(pcc, 0, 0, n - 1);
  double mp = JunctionTreeProbability(pcc.circuit(), lineage, pcc.events());
  double exact = ExhaustiveProbability(pcc.circuit(), lineage, pcc.events());
  EXPECT_NEAR(mp, exact, 1e-9);
  // Cross-check against direct world enumeration of the query.
  double direct = 0;
  for (uint64_t mask = 0; mask < (1ULL << pcc.events().size()); ++mask) {
    Valuation v = Valuation::FromMask(mask, pcc.events().size());
    if (EvaluateReachability(pcc.World(v), 0, 0, n - 1)) {
      direct += v.Probability(pcc.events());
    }
  }
  EXPECT_NEAR(mp, direct, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReachabilityPropertyTest,
                         ::testing::Range(0, 20));

// Correlated edges through a shared circuit (the Theorem-2 regime for a
// non-CQ query).
TEST(ReachabilityLineageTest, CorrelatedEdges) {
  PccInstance pcc(EdgeSchema());
  EventId e = pcc.events().Register("bridge_open", 0.5);
  GateId g = pcc.circuit().AddVar(e);
  // Both edges of the only path exist iff the same event holds.
  pcc.AddFact(0, {0, 1}, g);
  pcc.AddFact(0, {1, 2}, g);
  GateId lineage = ComputeReachabilityLineage(pcc, 0, 0, 2);
  // Perfectly correlated: P = 0.5, not 0.25.
  EXPECT_NEAR(JunctionTreeProbability(pcc.circuit(), lineage, pcc.events()),
              0.5, 1e-12);
}

// ---------------------------------------------------------------------------
// Target-indexed multi-target DP
// ---------------------------------------------------------------------------

TEST(MultiTargetReachabilityTest, TrivialAndDuplicateTargets) {
  TidInstance tid(EdgeSchema());
  tid.AddFact(0, {0, 1}, 0.4);
  PccInstance pcc = PccInstance::FromCInstance(tid.ToPcInstance());
  // Battery mixing the source itself, an out-of-domain value, a real
  // target, and a duplicate of it.
  std::vector<GateId> gates =
      ComputeMultiTargetReachabilityLineage(pcc, 0, 0, {0, 9, 1, 1});
  ASSERT_EQ(gates.size(), 4u);
  EXPECT_TRUE(pcc.circuit().const_value(gates[0]));    // t == source.
  EXPECT_FALSE(pcc.circuit().const_value(gates[1]));   // Out of domain.
  EXPECT_EQ(gates[2], gates[3]);                       // Duplicates share.
  EXPECT_NEAR(JunctionTreeProbability(pcc.circuit(), gates[2], pcc.events()),
              0.4, 1e-12);
}

TEST(MultiTargetReachabilityTest, OutOfDomainSource) {
  TidInstance tid(EdgeSchema());
  tid.AddFact(0, {0, 1}, 0.4);
  PccInstance pcc = PccInstance::FromCInstance(tid.ToPcInstance());
  std::vector<GateId> gates =
      ComputeMultiTargetReachabilityLineage(pcc, 0, 42, {0, 1, 42});
  ASSERT_EQ(gates.size(), 3u);
  EXPECT_FALSE(pcc.circuit().const_value(gates[0]));
  EXPECT_FALSE(pcc.circuit().const_value(gates[1]));
  EXPECT_TRUE(pcc.circuit().const_value(gates[2]));  // t == source.
}

// The battery of every vertex as a target agrees with per-world BFS on
// every valuation — the multi-target DP is exactly the single-target
// semantics, target by target.
TEST_P(ReachabilityPropertyTest, MultiTargetMatchesBfsWorldByWorld) {
  Rng rng(GetParam() + 1400);
  const uint32_t n = 5 + static_cast<uint32_t>(rng.UniformInt(3));
  TidInstance tid(EdgeSchema());
  uint32_t edges = 0;
  for (Value a = 0; a < n && edges < 13; ++a) {
    for (Value b = a + 1; b < n && edges < 13; ++b) {
      if (rng.Bernoulli(0.35)) {
        tid.AddFact(0, {a, b}, 0.2 + 0.6 * rng.UniformDouble());
        ++edges;
      }
    }
  }
  PccInstance pcc = PccInstance::FromCInstance(tid.ToPcInstance());
  const size_t num_events = pcc.events().size();
  const Value source = static_cast<Value>(rng.UniformInt(n));
  std::vector<Value> targets;
  for (Value t = 0; t < n; ++t) targets.push_back(t);
  std::vector<GateId> gates =
      ComputeMultiTargetReachabilityLineage(pcc, 0, source, targets);
  ASSERT_EQ(gates.size(), targets.size());
  for (uint64_t mask = 0; mask < (1ULL << num_events); ++mask) {
    Valuation v = Valuation::FromMask(mask, num_events);
    Instance world = pcc.World(v);
    for (size_t i = 0; i < targets.size(); ++i) {
      EXPECT_EQ(pcc.circuit().Evaluate(gates[i], v),
                EvaluateReachability(world, 0, source, targets[i]))
          << "mask=" << mask << " s=" << source << " t=" << targets[i];
    }
  }
}

// Probabilities from the battery agree with the single-target lineage
// construction, gate for gate.
TEST_P(ReachabilityPropertyTest, MultiTargetMatchesSingleTargetProbability) {
  Rng rng(GetParam() + 2100);
  TidInstance tid(EdgeSchema());
  const uint32_t n = 6;
  for (Value v = 0; v + 1 < n; ++v) {
    tid.AddFact(0, {v, v + 1}, 0.3 + 0.5 * rng.UniformDouble());
  }
  for (int c = 0; c < 3; ++c) {
    Value a = static_cast<Value>(rng.UniformInt(n));
    Value b = static_cast<Value>(rng.UniformInt(n));
    if (a != b) tid.AddFact(0, {a, b}, 0.3 + 0.5 * rng.UniformDouble());
  }
  PccInstance pcc = PccInstance::FromCInstance(tid.ToPcInstance());
  std::vector<Value> targets;
  for (Value t = 0; t < n; ++t) targets.push_back(t);
  std::vector<GateId> battery =
      ComputeMultiTargetReachabilityLineage(pcc, 0, 0, targets);
  for (size_t i = 0; i < targets.size(); ++i) {
    GateId single = ComputeReachabilityLineage(pcc, 0, 0, targets[i]);
    EXPECT_NEAR(
        JunctionTreeProbability(pcc.circuit(), battery[i], pcc.events()),
        JunctionTreeProbability(pcc.circuit(), single, pcc.events()), 1e-9)
        << "t=" << targets[i];
  }
}

TEST(MultiTargetReachabilityTest, CorrelatedEdges) {
  PccInstance pcc(EdgeSchema());
  EventId e = pcc.events().Register("bridge_open", 0.5);
  GateId g = pcc.circuit().AddVar(e);
  pcc.AddFact(0, {0, 1}, g);
  pcc.AddFact(0, {1, 2}, g);
  std::vector<GateId> gates =
      ComputeMultiTargetReachabilityLineage(pcc, 0, 0, {1, 2});
  EXPECT_NEAR(JunctionTreeProbability(pcc.circuit(), gates[0], pcc.events()),
              0.5, 1e-12);
  EXPECT_NEAR(JunctionTreeProbability(pcc.circuit(), gates[1], pcc.events()),
              0.5, 1e-12);
}

TEST(MultiTargetReachabilityTest, LongPathFullBatteryLinearStates) {
  // Sixteen targets spread along a 120-vertex path, one DP call: states
  // stay bounded and every probability is the product of its prefix.
  TidInstance tid(EdgeSchema());
  const uint32_t n = 120;
  for (Value v = 0; v + 1 < n; ++v) {
    tid.AddFact(0, {v, v + 1}, 0.95);
  }
  PccInstance pcc = PccInstance::FromCInstance(tid.ToPcInstance());
  std::vector<Value> targets;
  for (uint32_t k = 1; k <= 16; ++k) {
    targets.push_back(static_cast<Value>((k * n) / 17));
  }
  LineageStats stats;
  std::vector<GateId> gates =
      ComputeMultiTargetReachabilityLineage(pcc, 0, 0, targets, &stats);
  EXPECT_LE(stats.max_states_per_node, 256u);
  for (size_t i = 0; i < targets.size(); ++i) {
    double p = JunctionTreeProbability(pcc.circuit(), gates[i], pcc.events());
    EXPECT_NEAR(p, std::pow(0.95, targets[i]), 1e-9) << "t=" << targets[i];
  }
}

TEST(ReachabilityLineageTest, LongPathLinearStates) {
  // A long path: DP states per node stay bounded.
  TidInstance tid(EdgeSchema());
  const uint32_t n = 200;
  Rng rng(4);
  for (Value v = 0; v + 1 < n; ++v) {
    tid.AddFact(0, {v, v + 1}, 0.9);
  }
  PccInstance pcc = PccInstance::FromCInstance(tid.ToPcInstance());
  LineageStats stats;
  GateId lineage = ComputeReachabilityLineage(pcc, 0, 0, n - 1, &stats);
  EXPECT_LE(stats.max_states_per_node, 64u);
  double p = JunctionTreeProbability(pcc.circuit(), lineage, pcc.events());
  EXPECT_NEAR(p, std::pow(0.9, n - 1), 1e-9);
}

}  // namespace
}  // namespace tud
