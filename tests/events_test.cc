#include <vector>

#include "events/bool_formula.h"
#include "events/event_registry.h"
#include "events/valuation.h"
#include "gtest/gtest.h"
#include "util/rng.h"

namespace tud {
namespace {

TEST(EventRegistryTest, RegisterAndLookup) {
  EventRegistry registry;
  EventId a = registry.Register("a", 0.25);
  EventId b = registry.Register("b", 0.75);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.name(a), "a");
  EXPECT_EQ(registry.probability(b), 0.75);
  EXPECT_EQ(registry.Find("a"), a);
  EXPECT_EQ(registry.Find("missing"), std::nullopt);
}

TEST(EventRegistryTest, AnonymousEventsGetUniqueNames) {
  EventRegistry registry;
  EventId a = registry.RegisterAnonymous(0.5);
  EventId b = registry.RegisterAnonymous(0.5);
  EXPECT_NE(registry.name(a), registry.name(b));
}

TEST(EventRegistryDeathTest, RejectsDuplicatesAndBadProbabilities) {
  EventRegistry registry;
  registry.Register("a", 0.5);
  EXPECT_DEATH(registry.Register("a", 0.5), "duplicate");
  EXPECT_DEATH(registry.Register("b", 1.5), "probability");
  EXPECT_DEATH(registry.Register("c", -0.1), "probability");
}

TEST(EventRegistryTest, SetProbability) {
  EventRegistry registry;
  EventId a = registry.Register("a", 0.5);
  registry.set_probability(a, 1.0);
  EXPECT_EQ(registry.probability(a), 1.0);
}

TEST(ValuationTest, FromMaskDecodesBits) {
  Valuation v = Valuation::FromMask(0b101, 3);
  EXPECT_TRUE(v.value(0));
  EXPECT_FALSE(v.value(1));
  EXPECT_TRUE(v.value(2));
}

TEST(ValuationTest, ProbabilityOfIndependentEvents) {
  EventRegistry registry;
  registry.Register("a", 0.5);
  registry.Register("b", 0.25);
  // P(a & !b) = 0.5 * 0.75.
  Valuation v = Valuation::FromMask(0b01, 2);
  EXPECT_DOUBLE_EQ(v.Probability(registry), 0.5 * 0.75);
}

TEST(ValuationTest, ProbabilitiesSumToOne) {
  EventRegistry registry;
  registry.Register("a", 0.3);
  registry.Register("b", 0.8);
  registry.Register("c", 0.5);
  double total = 0.0;
  for (uint64_t mask = 0; mask < 8; ++mask) {
    total += Valuation::FromMask(mask, 3).Probability(registry);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ValuationTest, SampleRespectsDegenerateProbabilities) {
  EventRegistry registry;
  registry.Register("never", 0.0);
  registry.Register("always", 1.0);
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    Valuation v = Valuation::Sample(registry, rng);
    EXPECT_FALSE(v.value(0));
    EXPECT_TRUE(v.value(1));
  }
}

class FormulaTest : public ::testing::Test {
 protected:
  FormulaTest() {
    a_ = registry_.Register("a", 0.5);
    b_ = registry_.Register("b", 0.5);
    c_ = registry_.Register("c", 0.5);
  }

  bool Holds(const BoolFormula& f, uint64_t mask) {
    return f.Evaluate(Valuation::FromMask(mask, registry_.size()));
  }

  EventRegistry registry_;
  EventId a_, b_, c_;
};

TEST_F(FormulaTest, ConstantsAndVars) {
  EXPECT_TRUE(Holds(BoolFormula::True(), 0));
  EXPECT_FALSE(Holds(BoolFormula::False(), 0));
  EXPECT_TRUE(Holds(BoolFormula::Var(a_), 0b001));
  EXPECT_FALSE(Holds(BoolFormula::Var(a_), 0b110));
}

TEST_F(FormulaTest, Connectives) {
  BoolFormula f = BoolFormula::And(BoolFormula::Var(a_),
                                   BoolFormula::Not(BoolFormula::Var(b_)));
  EXPECT_TRUE(Holds(f, 0b001));
  EXPECT_FALSE(Holds(f, 0b011));
  BoolFormula g = BoolFormula::Or(f, BoolFormula::Var(c_));
  EXPECT_TRUE(Holds(g, 0b100));
  EXPECT_FALSE(Holds(g, 0b010));
}

TEST_F(FormulaTest, ConstantFolding) {
  EXPECT_EQ(BoolFormula::And(BoolFormula::True(), BoolFormula::Var(a_)).kind(),
            BoolFormula::Kind::kVar);
  EXPECT_EQ(
      BoolFormula::And(BoolFormula::False(), BoolFormula::Var(a_)).kind(),
      BoolFormula::Kind::kConst);
  EXPECT_EQ(BoolFormula::Or(BoolFormula::True(), BoolFormula::Var(a_)).kind(),
            BoolFormula::Kind::kConst);
  EXPECT_EQ(BoolFormula::Not(BoolFormula::Not(BoolFormula::Var(a_))).kind(),
            BoolFormula::Kind::kVar);
  EXPECT_TRUE(BoolFormula::And(std::vector<BoolFormula>{}).const_value());
  EXPECT_FALSE(BoolFormula::Or(std::vector<BoolFormula>{}).const_value());
}

TEST_F(FormulaTest, EventsCollected) {
  BoolFormula f = BoolFormula::Or(
      BoolFormula::And(BoolFormula::Var(a_), BoolFormula::Var(c_)),
      BoolFormula::Var(a_));
  EXPECT_EQ(f.Events(), (std::vector<EventId>{a_, c_}));
}

TEST_F(FormulaTest, IsPositive) {
  EXPECT_TRUE(BoolFormula::And(BoolFormula::Var(a_), BoolFormula::Var(b_))
                  .IsPositive());
  EXPECT_FALSE(BoolFormula::And(BoolFormula::Var(a_),
                                BoolFormula::Not(BoolFormula::Var(b_)))
                   .IsPositive());
}

TEST_F(FormulaTest, ParseSimple) {
  auto f = BoolFormula::Parse("a & !b | c", registry_);
  ASSERT_TRUE(f.has_value());
  // a&!b|c on (a,b,c) masks.
  EXPECT_TRUE(Holds(*f, 0b001));   // a
  EXPECT_FALSE(Holds(*f, 0b011));  // a,b
  EXPECT_TRUE(Holds(*f, 0b111));   // c saves it
  EXPECT_FALSE(Holds(*f, 0b000));
}

TEST_F(FormulaTest, ParsePrecedenceAndParens) {
  auto f = BoolFormula::Parse("(a | b) & c", registry_);
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(Holds(*f, 0b101));
  EXPECT_FALSE(Holds(*f, 0b001));
  auto g = BoolFormula::Parse("a | b & c", registry_);
  ASSERT_TRUE(g.has_value());
  EXPECT_TRUE(Holds(*g, 0b001));  // '&' binds tighter.
}

TEST_F(FormulaTest, ParseConstantsAndErrors) {
  EXPECT_TRUE(BoolFormula::Parse("true", registry_).has_value());
  EXPECT_TRUE(BoolFormula::Parse("false | a", registry_).has_value());
  EXPECT_FALSE(BoolFormula::Parse("unknown", registry_).has_value());
  EXPECT_FALSE(BoolFormula::Parse("a &", registry_).has_value());
  EXPECT_FALSE(BoolFormula::Parse("(a", registry_).has_value());
  EXPECT_FALSE(BoolFormula::Parse("", registry_).has_value());
  EXPECT_FALSE(BoolFormula::Parse("a b", registry_).has_value());
}

TEST_F(FormulaTest, ParseRoundTripPreservesSemantics) {
  const char* inputs[] = {"a",          "!a",           "a & b & c",
                          "a | b | c",  "!(a & b) | c", "a & (b | !c)",
                          "!a & !b",    "(a|b)&(b|c)",  "!(a | (b & c))"};
  for (const char* text : inputs) {
    auto f = BoolFormula::Parse(text, registry_);
    ASSERT_TRUE(f.has_value()) << text;
    auto g = BoolFormula::Parse(f->ToString(registry_), registry_);
    ASSERT_TRUE(g.has_value()) << f->ToString(registry_);
    for (uint64_t mask = 0; mask < 8; ++mask) {
      EXPECT_EQ(Holds(*f, mask), Holds(*g, mask))
          << text << " mask=" << mask;
    }
  }
}

// Property sweep: random formulas evaluate consistently with a reference
// interpreter built from their structure.
class RandomFormulaTest : public ::testing::TestWithParam<int> {};

BoolFormula RandomFormula(Rng& rng, const EventRegistry& registry,
                          int depth) {
  if (depth == 0 || rng.UniformInt(4) == 0) {
    if (rng.UniformInt(8) == 0) return BoolFormula::Constant(rng.Bernoulli(0.5));
    return BoolFormula::Var(
        static_cast<EventId>(rng.UniformInt(registry.size())));
  }
  switch (rng.UniformInt(3)) {
    case 0:
      return BoolFormula::Not(RandomFormula(rng, registry, depth - 1));
    case 1:
      return BoolFormula::And(RandomFormula(rng, registry, depth - 1),
                              RandomFormula(rng, registry, depth - 1));
    default:
      return BoolFormula::Or(RandomFormula(rng, registry, depth - 1),
                             RandomFormula(rng, registry, depth - 1));
  }
}

TEST_P(RandomFormulaTest, ToStringParseRoundTrip) {
  EventRegistry registry;
  for (int i = 0; i < 4; ++i) registry.Register("e" + std::to_string(i), 0.5);
  Rng rng(GetParam());
  BoolFormula f = RandomFormula(rng, registry, 4);
  auto g = BoolFormula::Parse(f.ToString(registry), registry);
  ASSERT_TRUE(g.has_value()) << f.ToString(registry);
  for (uint64_t mask = 0; mask < 16; ++mask) {
    Valuation v = Valuation::FromMask(mask, 4);
    EXPECT_EQ(f.Evaluate(v), g->Evaluate(v)) << f.ToString(registry);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFormulaTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace tud
