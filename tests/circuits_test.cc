#include <vector>

#include "circuits/bool_circuit.h"
#include "events/bool_formula.h"
#include "events/event_registry.h"
#include "gtest/gtest.h"
#include "util/rng.h"

namespace tud {
namespace {

TEST(BoolCircuitTest, ConstantsAreShared) {
  BoolCircuit c;
  EXPECT_EQ(c.AddConst(true), c.AddConst(true));
  EXPECT_EQ(c.AddConst(false), c.AddConst(false));
  EXPECT_NE(c.AddConst(true), c.AddConst(false));
}

TEST(BoolCircuitTest, VarsAreShared) {
  BoolCircuit c;
  EXPECT_EQ(c.AddVar(3), c.AddVar(3));
  EXPECT_NE(c.AddVar(3), c.AddVar(4));
  EXPECT_EQ(c.NumEvents(), 5u);
}

TEST(BoolCircuitTest, ConstantFolding) {
  BoolCircuit c;
  GateId a = c.AddVar(0);
  EXPECT_EQ(c.AddAnd(a, c.AddConst(true)), a);
  EXPECT_EQ(c.kind(c.AddAnd(a, c.AddConst(false))), GateKind::kConst);
  EXPECT_EQ(c.AddOr(a, c.AddConst(false)), a);
  EXPECT_EQ(c.kind(c.AddOr(a, c.AddConst(true))), GateKind::kConst);
  EXPECT_EQ(c.AddNot(c.AddNot(a)), a);
  // Duplicate inputs collapse.
  EXPECT_EQ(c.AddAnd(a, a), a);
  EXPECT_EQ(c.AddOr(a, a), a);
}

TEST(BoolCircuitTest, StructuralHashingDeduplicates) {
  BoolCircuit c;
  GateId a = c.AddVar(0);
  GateId b = c.AddVar(1);
  GateId g1 = c.AddAnd(a, b);
  GateId g2 = c.AddAnd(b, a);  // Sorted inputs: same gate.
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(c.AddNot(a), c.AddNot(a));
}

TEST(BoolCircuitTest, EvaluationMatchesSemantics) {
  BoolCircuit c;
  GateId a = c.AddVar(0);
  GateId b = c.AddVar(1);
  GateId g = c.AddOr(c.AddAnd(a, c.AddNot(b)), c.AddAnd(c.AddNot(a), b));
  // g = a XOR b.
  for (uint64_t mask = 0; mask < 4; ++mask) {
    Valuation v = Valuation::FromMask(mask, 2);
    EXPECT_EQ(c.Evaluate(g, v), v.value(0) != v.value(1)) << mask;
  }
}

TEST(BoolCircuitTest, AddFormulaMatchesFormulaEvaluation) {
  EventRegistry registry;
  for (int i = 0; i < 3; ++i) registry.Register("e" + std::to_string(i));
  auto f = BoolFormula::Parse("(e0 | e1) & !e2", registry);
  ASSERT_TRUE(f.has_value());
  BoolCircuit c;
  GateId g = c.AddFormula(*f);
  for (uint64_t mask = 0; mask < 8; ++mask) {
    Valuation v = Valuation::FromMask(mask, 3);
    EXPECT_EQ(c.Evaluate(g, v), f->Evaluate(v)) << mask;
  }
}

BoolCircuit RandomCircuit(Rng& rng, uint32_t num_events, uint32_t num_gates,
                          GateId* root) {
  BoolCircuit c;
  std::vector<GateId> pool;
  for (EventId e = 0; e < num_events; ++e) pool.push_back(c.AddVar(e));
  for (uint32_t i = 0; i < num_gates; ++i) {
    GateId g;
    switch (rng.UniformInt(3)) {
      case 0:
        g = c.AddNot(pool[rng.UniformInt(pool.size())]);
        break;
      case 1: {
        uint32_t arity = 2 + static_cast<uint32_t>(rng.UniformInt(3));
        std::vector<GateId> ins;
        for (uint32_t k = 0; k < arity; ++k) {
          ins.push_back(pool[rng.UniformInt(pool.size())]);
        }
        g = c.AddAnd(std::move(ins));
        break;
      }
      default: {
        uint32_t arity = 2 + static_cast<uint32_t>(rng.UniformInt(3));
        std::vector<GateId> ins;
        for (uint32_t k = 0; k < arity; ++k) {
          ins.push_back(pool[rng.UniformInt(pool.size())]);
        }
        g = c.AddOr(std::move(ins));
        break;
      }
    }
    pool.push_back(g);
  }
  *root = pool.back();
  return c;
}

class RandomCircuitTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomCircuitTest, BinarizePreservesSemantics) {
  Rng rng(GetParam());
  GateId root;
  BoolCircuit c = RandomCircuit(rng, 5, 30, &root);
  auto [bin, remap] = c.Binarize();
  // All gates in the binarised circuit have fan-in <= 2.
  for (GateId g = 0; g < bin.NumGates(); ++g) {
    EXPECT_LE(bin.inputs(g).size(), 2u);
  }
  for (uint64_t mask = 0; mask < 32; ++mask) {
    Valuation v = Valuation::FromMask(mask, 5);
    EXPECT_EQ(c.Evaluate(root, v), bin.Evaluate(remap[root], v)) << mask;
  }
}

TEST_P(RandomCircuitTest, ExtractConePreservesSemantics) {
  Rng rng(GetParam() + 1000);
  GateId root;
  BoolCircuit c = RandomCircuit(rng, 5, 30, &root);
  auto [cone, cone_root] = c.ExtractCone(root);
  EXPECT_LE(cone.NumGates(), c.NumGates());
  for (uint64_t mask = 0; mask < 32; ++mask) {
    Valuation v = Valuation::FromMask(mask, 5);
    EXPECT_EQ(c.Evaluate(root, v), cone.Evaluate(cone_root, v)) << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuitTest, ::testing::Range(0, 20));

TEST(BoolCircuitTest, PrimalEdgesCoverGateCliques) {
  BoolCircuit c;
  GateId a = c.AddVar(0);
  GateId b = c.AddVar(1);
  GateId d = c.AddVar(2);
  GateId g = c.AddAnd({a, b, d});
  auto edges = c.PrimalEdges();
  auto has = [&](GateId x, GateId y) {
    return std::find(edges.begin(), edges.end(),
                     std::make_pair(std::min(x, y), std::max(x, y))) !=
           edges.end();
  };
  // Inputs clique + inputs-to-output edges.
  EXPECT_TRUE(has(a, b));
  EXPECT_TRUE(has(a, d));
  EXPECT_TRUE(has(b, d));
  EXPECT_TRUE(has(a, g));
  EXPECT_TRUE(has(b, g));
  EXPECT_TRUE(has(d, g));
}

TEST(BoolCircuitTest, IsMonotone) {
  BoolCircuit c;
  GateId a = c.AddVar(0);
  GateId b = c.AddVar(1);
  GateId mono = c.AddOr(c.AddAnd(a, b), a);
  GateId nonmono = c.AddAnd(a, c.AddNot(b));
  EXPECT_TRUE(c.IsMonotone(mono));
  EXPECT_FALSE(c.IsMonotone(nonmono));
  // Monotonicity is judged per cone: `mono` stays monotone even though
  // the circuit contains a NOT elsewhere.
  EXPECT_TRUE(c.IsMonotone(mono));
}

TEST(BoolCircuitTest, ReachableFromIsSortedAndComplete) {
  BoolCircuit c;
  GateId a = c.AddVar(0);
  GateId b = c.AddVar(1);
  GateId unused = c.AddVar(2);
  (void)unused;
  GateId g = c.AddAnd(a, b);
  auto reach = c.ReachableFrom(g);
  EXPECT_EQ(reach, (std::vector<GateId>{a, b, g}));
}

TEST(BoolCircuitDeathTest, RejectsOutOfRangeInputs) {
  BoolCircuit c;
  EXPECT_DEATH(c.AddNot(42), "CHECK failed");
}

}  // namespace
}  // namespace tud
