#include <vector>

#include "gtest/gtest.h"
#include "inference/exhaustive.h"
#include "inference/junction_tree.h"
#include "queries/conjunctive_query.h"
#include "queries/lineage.h"
#include "queries/query_parser.h"
#include "uncertain/c_instance.h"
#include "uncertain/pcc_instance.h"
#include "uncertain/tid_instance.h"
#include "util/rng.h"

namespace tud {
namespace {

Schema MakeRst() {
  Schema schema;
  schema.AddRelation("R", 1);
  schema.AddRelation("S", 2);
  schema.AddRelation("T", 1);
  return schema;
}

TEST(ConjunctiveQueryTest, NaiveEvaluation) {
  Schema schema = MakeRst();
  Instance instance(schema);
  instance.AddFact(0, {0});      // R(a)
  instance.AddFact(1, {0, 1});   // S(a,b)
  instance.AddFact(2, {1});      // T(b)
  ConjunctiveQuery q = ConjunctiveQuery::RstPath(0, 1, 2);
  EXPECT_TRUE(q.EvaluateBool(instance));

  Instance broken(schema);
  broken.AddFact(0, {0});
  broken.AddFact(1, {2, 1});  // S doesn't start at an R element.
  broken.AddFact(2, {1});
  EXPECT_FALSE(q.EvaluateBool(broken));
}

TEST(ConjunctiveQueryTest, ConstantsInAtoms) {
  Schema schema = MakeRst();
  Instance instance(schema);
  instance.AddFact(1, {3, 4});
  ConjunctiveQuery q;
  q.AddAtom(1, {Term::C(3), Term::V(0)});
  EXPECT_TRUE(q.EvaluateBool(instance));
  ConjunctiveQuery q2;
  q2.AddAtom(1, {Term::C(5), Term::V(0)});
  EXPECT_FALSE(q2.EvaluateBool(instance));
}

TEST(ConjunctiveQueryTest, SelfJoinVariables) {
  Schema schema = MakeRst();
  Instance instance(schema);
  instance.AddFact(1, {0, 0});
  ConjunctiveQuery loop;
  loop.AddAtom(1, {Term::V(0), Term::V(0)});
  EXPECT_TRUE(loop.EvaluateBool(instance));
  Instance no_loop(schema);
  no_loop.AddFact(1, {0, 1});
  EXPECT_FALSE(loop.EvaluateBool(no_loop));
}

TEST(ConjunctiveQueryTest, UcqSemantics) {
  Schema schema = MakeRst();
  Instance instance(schema);
  instance.AddFact(2, {9});
  ConjunctiveQuery wants_r;
  wants_r.AddAtom(0, {Term::V(0)});
  ConjunctiveQuery wants_t;
  wants_t.AddAtom(2, {Term::V(0)});
  UnionOfConjunctiveQueries ucq({wants_r, wants_t});
  EXPECT_TRUE(ucq.EvaluateBool(instance));
  UnionOfConjunctiveQueries just_r({wants_r});
  EXPECT_FALSE(just_r.EvaluateBool(instance));
}

TEST(ConjunctiveQueryTest, ToString) {
  Schema schema = MakeRst();
  ConjunctiveQuery q = ConjunctiveQuery::RstPath(0, 1, 2);
  EXPECT_EQ(q.ToString(schema), "∃ x0,x1: R(x0) ∧ S(x0,x1) ∧ T(x1)");
}

// ---------------------------------------------------------------------------
// Lineage correctness: for every valuation, the lineage gate equals the
// naive evaluation of the query on the selected world. This is the
// defining property of lineage (§2.2).
// ---------------------------------------------------------------------------

// Random TID over a path-shaped domain (treewidth 1 Gaifman graph), RST
// schema.
TidInstance RandomPathTid(Rng& rng, uint32_t domain) {
  TidInstance tid(MakeRst());
  for (Value v = 0; v < domain; ++v) {
    if (rng.Bernoulli(0.7)) {
      tid.AddFact(0, {v}, 0.2 + 0.6 * rng.UniformDouble());
    }
    if (rng.Bernoulli(0.7)) {
      tid.AddFact(2, {v}, 0.2 + 0.6 * rng.UniformDouble());
    }
    if (v + 1 < domain && rng.Bernoulli(0.8)) {
      tid.AddFact(1, {v, v + 1}, 0.2 + 0.6 * rng.UniformDouble());
    }
  }
  return tid;
}

class LineagePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LineagePropertyTest, LineageAgreesWithPerWorldEvaluation) {
  Rng rng(GetParam());
  TidInstance tid = RandomPathTid(rng, 5);
  PccInstance pcc = PccInstance::FromCInstance(tid.ToPcInstance());
  const size_t num_events = pcc.events().size();
  ASSERT_LE(num_events, 14u);

  ConjunctiveQuery q = ConjunctiveQuery::RstPath(0, 1, 2);
  LineageStats stats;
  GateId lineage = ComputeCqLineage(q, pcc, &stats);
  EXPECT_GT(stats.num_nice_nodes, 0u);

  for (uint64_t mask = 0; mask < (1ULL << num_events); ++mask) {
    Valuation v = Valuation::FromMask(mask, num_events);
    Instance world = pcc.World(v);
    EXPECT_EQ(pcc.circuit().Evaluate(lineage, v), q.EvaluateBool(world))
        << "mask=" << mask;
  }
}

TEST_P(LineagePropertyTest, SelfJoinAndConstantLineage) {
  Rng rng(GetParam() + 400);
  TidInstance tid = RandomPathTid(rng, 4);
  PccInstance pcc = PccInstance::FromCInstance(tid.ToPcInstance());
  const size_t num_events = pcc.events().size();
  ASSERT_LE(num_events, 14u);

  // q: ∃x S(x, x+?) with constant end point 2 — S(x, #2).
  ConjunctiveQuery q;
  q.AddAtom(1, {Term::V(0), Term::C(2)});
  GateId lineage = ComputeCqLineage(q, pcc);
  for (uint64_t mask = 0; mask < (1ULL << num_events); ++mask) {
    Valuation v = Valuation::FromMask(mask, num_events);
    EXPECT_EQ(pcc.circuit().Evaluate(lineage, v),
              q.EvaluateBool(pcc.World(v)))
        << "mask=" << mask;
  }
}

TEST_P(LineagePropertyTest, UcqLineage) {
  Rng rng(GetParam() + 800);
  TidInstance tid = RandomPathTid(rng, 4);
  PccInstance pcc = PccInstance::FromCInstance(tid.ToPcInstance());
  const size_t num_events = pcc.events().size();
  ASSERT_LE(num_events, 14u);

  ConjunctiveQuery r_then_s;
  r_then_s.AddAtom(0, {Term::V(0)});
  r_then_s.AddAtom(1, {Term::V(0), Term::V(1)});
  ConjunctiveQuery lonely_t;
  lonely_t.AddAtom(2, {Term::V(0)});
  UnionOfConjunctiveQueries ucq({r_then_s, lonely_t});

  GateId lineage = ComputeUcqLineage(ucq, pcc);
  for (uint64_t mask = 0; mask < (1ULL << num_events); ++mask) {
    Valuation v = Valuation::FromMask(mask, num_events);
    EXPECT_EQ(pcc.circuit().Evaluate(lineage, v),
              ucq.EvaluateBool(pcc.World(v)))
        << "mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LineagePropertyTest, ::testing::Range(0, 15));

// Theorem 1 end-to-end on the paper's hard query: exact probability via
// lineage + message passing matches brute-force possible-world
// enumeration.
TEST(Theorem1Test, RstProbabilityMatchesEnumeration) {
  Rng rng(42);
  TidInstance tid = RandomPathTid(rng, 5);
  PccInstance pcc = PccInstance::FromCInstance(tid.ToPcInstance());
  ConjunctiveQuery q = ConjunctiveQuery::RstPath(0, 1, 2);
  GateId lineage = ComputeCqLineage(q, pcc);

  double exact = ExhaustiveProbability(pcc.circuit(), lineage, pcc.events());
  double mp = JunctionTreeProbability(pcc.circuit(), lineage, pcc.events());
  EXPECT_NEAR(mp, exact, 1e-9);
}

// Theorem 2: correlated annotations through a shared circuit. Two S
// facts share one event; the lineage must reflect the correlation.
TEST(Theorem2Test, CorrelatedAnnotationsHandled) {
  PccInstance pcc(MakeRst());
  EventId shared = pcc.events().Register("shared", 0.5);
  EventId solo = pcc.events().Register("solo", 0.5);
  GateId g_shared = pcc.circuit().AddVar(shared);
  GateId g_both = pcc.circuit().AddAnd(g_shared, pcc.circuit().AddVar(solo));
  pcc.AddFact(0, {0}, g_shared);       // R(a) iff shared.
  pcc.AddFact(1, {0, 1}, g_shared);    // S(a,b) iff shared.
  pcc.AddFact(2, {1}, g_both);         // T(b) iff shared & solo.

  ConjunctiveQuery q = ConjunctiveQuery::RstPath(0, 1, 2);
  GateId lineage = ComputeCqLineage(q, pcc);
  // Query holds iff shared & solo: P = 0.25.
  double p = JunctionTreeProbability(pcc.circuit(), lineage, pcc.events());
  EXPECT_NEAR(p, 0.25, 1e-12);
  for (uint64_t mask = 0; mask < 4; ++mask) {
    Valuation v = Valuation::FromMask(mask, 2);
    EXPECT_EQ(pcc.circuit().Evaluate(lineage, v),
              q.EvaluateBool(pcc.World(v)));
  }
}

TEST(LineageTest, EmptyInstanceGivesFalse) {
  PccInstance pcc(MakeRst());
  ConjunctiveQuery q = ConjunctiveQuery::RstPath(0, 1, 2);
  GateId lineage = ComputeCqLineage(q, pcc);
  EXPECT_EQ(pcc.circuit().kind(lineage), GateKind::kConst);
  EXPECT_FALSE(pcc.circuit().const_value(lineage));
}

TEST(LineageTest, CertainFactsGiveConstantTrueLineage) {
  PccInstance pcc(MakeRst());
  GateId always = pcc.circuit().AddConst(true);
  pcc.AddFact(0, {0}, always);
  pcc.AddFact(1, {0, 1}, always);
  pcc.AddFact(2, {1}, always);
  ConjunctiveQuery q = ConjunctiveQuery::RstPath(0, 1, 2);
  GateId lineage = ComputeCqLineage(q, pcc);
  Valuation v(0);
  EXPECT_TRUE(pcc.circuit().Evaluate(lineage, v));
}

TEST(LineageTest, StatsReportBoundedStates) {
  Rng rng(7);
  TidInstance tid = RandomPathTid(rng, 30);
  PccInstance pcc = PccInstance::FromCInstance(tid.ToPcInstance());
  ConjunctiveQuery q = ConjunctiveQuery::RstPath(0, 1, 2);
  LineageStats stats;
  ComputeCqLineage(q, pcc, &stats);
  // Path-shaped instance: decomposition width 1; the per-node state
  // count is bounded by a constant independent of n.
  EXPECT_LE(stats.decomposition_width, 1);
  EXPECT_LE(stats.max_states_per_node, 200u);
}

TEST(LineageDeathTest, RejectsUnboundQueryVariable) {
  PccInstance pcc(MakeRst());
  pcc.AddFact(0, {0}, pcc.circuit().AddConst(true));
  ConjunctiveQuery q;
  q.AddAtom(0, {Term::V(1)});  // Variable 0 never occurs.
  EXPECT_DEATH(ComputeCqLineage(q, pcc), "occurs in no atom");
}


TEST(QueryParserTest, ParsesAtomsVariablesAndConstants) {
  Schema schema = MakeRst();
  Dictionary dict;
  Value a = dict.Intern("a");
  auto q = ParseConjunctiveQuery("R(X), S(X, Y), T(Y)", schema, dict);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->NumAtoms(), 3u);
  EXPECT_EQ(q->NumVars(), 2u);
  EXPECT_EQ(q->atom(1).terms[0], Term::V(0));
  EXPECT_EQ(q->atom(1).terms[1], Term::V(1));

  auto q2 = ParseConjunctiveQuery("S(a, Who)", schema, dict);
  ASSERT_TRUE(q2.has_value());
  EXPECT_EQ(q2->atom(0).terms[0], Term::C(a));
  EXPECT_EQ(q2->atom(0).terms[1], Term::V(0));

  // '?'-prefixed names are variables regardless of case.
  auto q3 = ParseConjunctiveQuery("S(?x, ?x)", schema, dict);
  ASSERT_TRUE(q3.has_value());
  EXPECT_EQ(q3->NumVars(), 1u);
}

TEST(QueryParserTest, ParsedQueryEvaluatesLikeHandBuilt) {
  Schema schema = MakeRst();
  Dictionary dict;
  auto parsed = ParseConjunctiveQuery("R(X), S(X, Y), T(Y)", schema, dict);
  ASSERT_TRUE(parsed.has_value());
  ConjunctiveQuery built = ConjunctiveQuery::RstPath(0, 1, 2);
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    TidInstance tid = RandomPathTid(rng, 5);
    // Compare on the support instance.
    EXPECT_EQ(parsed->EvaluateBool(tid.instance()),
              built.EvaluateBool(tid.instance()));
  }
}

TEST(QueryParserTest, RejectsMalformedInput) {
  Schema schema = MakeRst();
  Dictionary dict;
  EXPECT_FALSE(ParseConjunctiveQuery("", schema, dict).has_value());
  EXPECT_FALSE(ParseConjunctiveQuery("Q(X)", schema, dict).has_value());
  EXPECT_FALSE(ParseConjunctiveQuery("R(X", schema, dict).has_value());
  EXPECT_FALSE(ParseConjunctiveQuery("R(X,Y)", schema, dict).has_value());
  EXPECT_FALSE(ParseConjunctiveQuery("R(X),", schema, dict).has_value());
  EXPECT_FALSE(ParseConjunctiveQuery("R(X) S(X,Y)", schema, dict)
                   .has_value());
  EXPECT_FALSE(ParseConjunctiveQuery("R()", schema, dict).has_value());
}

}  // namespace
}  // namespace tud
