// Crash recovery, pinned the hard way:
//  - the crash-point fuzz: a scripted workload is run once to
//    completion, then the directory is "crashed" at *every* WAL record
//    boundary (and mid-record, the torn-tail shape) and recovered; the
//    recovered probabilities must be bit-identical to an in-memory
//    oracle that applied exactly the surviving prefix;
//  - injected I/O faults (short writes, failed fsync, bit flips —
//    TUD_FAULT_INJECTION builds): an append stream under fire loses
//    only unacknowledged mutations, a checkpoint that fails mid-write
//    is invisible to recovery, and a bit flip on disk is always a typed
//    kIoError, never a silently wrong answer;
//  - recovered state plugs back into serving: PublishSnapshot +
//    EpochedServingSession answers match the oracle.

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "incremental/epoch.h"
#include "incremental/incremental_session.h"
#include "persist/durable_session.h"
#include "persist/wal.h"
#include "queries/query_session.h"
#include "serving/server.h"
#include "uncertain/pcc_instance.h"
#include "util/budget.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace tud {
namespace persist {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() /
                       ("tud_recovery_" + tag + "_" +
                        std::to_string(::getpid()));
  fs::remove_all(dir);
  return dir.string();
}

Schema EdgeSchema() {
  Schema schema;
  schema.AddRelation("E", 2);
  return schema;
}

// The scripted workload, expressed directly (each step is one WAL
// record, so step index == LSN). Kept small enough that the crash-point
// fuzz — which recovers O(steps) directories and replays O(steps^2)
// records — stays fast, while still covering every record type and
// both covered and cone-growing structural updates.
struct Step {
  enum Kind {
    kInsert,
    kDelete,
    kUpdateProb,
    kSetProb,
    kRegisterEvent,
    kRegisterReach,
    kPublish,
  } kind = kInsert;
  std::vector<Value> args;
  double probability = 0.5;
  size_t insert_index = 0;
  EventId event = 0;
  std::string name;
  Value source = 0, target = 0;
};

std::vector<Step> Script() {
  std::vector<Step> steps;
  auto insert = [&](Value a, Value b, double p) {
    Step s;
    s.kind = Step::kInsert;
    s.args = {a, b};
    s.probability = p;
    steps.push_back(s);
  };
  insert(0, 1, 0.5);
  insert(1, 2, 0.625);
  insert(2, 3, 0.75);
  insert(0, 2, 0.375);
  {
    Step s;
    s.kind = Step::kRegisterReach;
    s.source = 0;
    s.target = 3;
    steps.push_back(s);
  }
  {
    Step s;
    s.kind = Step::kRegisterEvent;
    s.name = "supply";
    s.probability = 0.9;
    steps.push_back(s);
  }
  insert(1, 3, 0.5);     // Covered insert.
  insert(3, 4, 0.8125);  // Cone-growing insert.
  {
    Step s;
    s.kind = Step::kUpdateProb;
    s.event = 1;
    s.probability = 0.3125;
    steps.push_back(s);
  }
  {
    Step s;
    s.kind = Step::kPublish;
    steps.push_back(s);
  }
  {
    Step s;
    s.kind = Step::kDelete;
    s.insert_index = 4;  // The covered (1,3) insert.
    steps.push_back(s);
  }
  {
    Step s;
    s.kind = Step::kSetProb;
    s.event = 0;
    s.probability = 0.4375;
    steps.push_back(s);
  }
  insert(2, 4, 0.5625);
  {
    Step s;
    s.kind = Step::kUpdateProb;
    s.event = 2;
    s.probability = 0.6875;
    steps.push_back(s);
  }
  return steps;
}

/// Applies steps[0..count). `on_durable` drives a DurableSession (all
/// steps must be accepted); otherwise the in-memory oracle.
struct Runner {
  DurableSession* durable = nullptr;
  QuerySession* oracle_session = nullptr;
  incremental::IncrementalSession* oracle_inc = nullptr;
  incremental::EpochManager* epochs = nullptr;
  std::vector<incremental::InsertedFact> inserted;
  std::vector<incremental::QueryId> queries;

  void Apply(const std::vector<Step>& steps, size_t count) {
    for (size_t i = 0; i < count; ++i) {
      const Step& s = steps[i];
      switch (s.kind) {
        case Step::kInsert:
          if (durable != nullptr) {
            incremental::InsertedFact out;
            ASSERT_EQ(durable->InsertFact(0, s.args, s.probability, &out),
                      EngineStatus::kOk)
                << "step " << i;
            inserted.push_back(out);
          } else {
            inserted.push_back(
                oracle_inc->InsertFact(0, s.args, s.probability));
          }
          break;
        case Step::kDelete:
          if (durable != nullptr) {
            ASSERT_EQ(durable->DeleteFact(inserted[s.insert_index].fact),
                      EngineStatus::kOk)
                << "step " << i;
          } else {
            oracle_inc->DeleteFact(inserted[s.insert_index].fact);
          }
          break;
        case Step::kUpdateProb:
          if (durable != nullptr) {
            ASSERT_EQ(durable->UpdateProbability(s.event, s.probability),
                      EngineStatus::kOk)
                << "step " << i;
          } else {
            oracle_inc->UpdateProbability(s.event, s.probability);
          }
          break;
        case Step::kSetProb:
          if (durable != nullptr) {
            ASSERT_EQ(durable->SetProbability(s.event, s.probability),
                      EngineStatus::kOk)
                << "step " << i;
          } else {
            oracle_session->UpdateProbability(s.event, s.probability);
          }
          break;
        case Step::kRegisterEvent:
          if (durable != nullptr) {
            ASSERT_EQ(durable->RegisterEvent(s.name, s.probability),
                      EngineStatus::kOk)
                << "step " << i;
          } else {
            oracle_session->pcc().events().Register(s.name, s.probability);
          }
          break;
        case Step::kRegisterReach:
          if (durable != nullptr) {
            incremental::QueryId q = 0;
            ASSERT_EQ(
                durable->RegisterReachability(0, s.source, s.target, &q),
                EngineStatus::kOk)
                << "step " << i;
            queries.push_back(q);
          } else {
            queries.push_back(
                oracle_inc->RegisterReachability(0, s.source, s.target));
          }
          break;
        case Step::kPublish:
          if (durable != nullptr) {
            ASSERT_EQ(durable->PublishSnapshot(*epochs), EngineStatus::kOk)
                << "step " << i;
          }
          // The oracle skips epoch markers: they change no answer.
          break;
      }
    }
  }
};

struct OracleState {
  std::unique_ptr<QuerySession> session;
  std::unique_ptr<incremental::IncrementalSession> inc;
  Runner runner;

  explicit OracleState(size_t prefix) {
    session = std::make_unique<QuerySession>(PccInstance(EdgeSchema()));
    inc = std::make_unique<incremental::IncrementalSession>(*session);
    runner.oracle_session = session.get();
    runner.oracle_inc = inc.get();
    runner.Apply(Script(), prefix);
  }
};

void CopyDir(const std::string& from, const std::string& to) {
  fs::create_directories(to);
  for (const auto& entry : fs::directory_iterator(from))
    fs::copy_file(entry.path(), fs::path(to) / entry.path().filename());
}

/// Byte offsets of each record boundary in a WAL file: boundary[i] is
/// the offset just past record i-1 (boundary[0] = header). Derived by
/// re-encoding the records a clean read returns — the writer framed
/// them the same way.
std::vector<uint64_t> RecordBoundaries(const std::string& wal_path,
                                       size_t expected_records) {
  const WalReadResult read = ReadWal(wal_path);
  EXPECT_EQ(read.status, EngineStatus::kOk);
  EXPECT_EQ(read.records.size(), expected_records);
  std::vector<uint64_t> boundaries;
  uint64_t offset = 24;  // File header.
  boundaries.push_back(offset);
  for (const WalRecord& r : read.records) {
    offset += 8 + EncodeWalRecord(r).size();
    boundaries.push_back(offset);
  }
  EXPECT_EQ(offset, read.valid_bytes);
  return boundaries;
}

// The tentpole acceptance test: kill the session at every record
// boundary and in the middle of every record; the recovered state must
// be bit-identical to an uncrashed run of the surviving prefix.
TEST(CrashPointFuzzTest, EveryBoundaryRecoversBitIdentical) {
  const std::vector<Step> steps = Script();
  const std::string master = FreshDir("fuzz_master");
  {
    incremental::EpochManager epochs;
    std::unique_ptr<DurableSession> durable;
    ASSERT_EQ(DurableSession::Create(master, EdgeSchema(), PersistOptions{},
                                     &durable),
              EngineStatus::kOk);
    Runner runner;
    runner.durable = durable.get();
    runner.epochs = &epochs;
    runner.Apply(steps, steps.size());
    ASSERT_EQ(durable->Sync(), EngineStatus::kOk);
  }
  const std::vector<uint64_t> boundaries =
      RecordBoundaries(master + "/wal-0.log", steps.size());

  for (size_t i = 0; i <= steps.size(); ++i) {
    // Crash exactly at boundary i: records [0, i) survive.
    const std::string crashed =
        FreshDir("fuzz_at_" + std::to_string(i));
    CopyDir(master, crashed);
    fs::resize_file(crashed + "/wal-0.log", boundaries[i]);

    RecoveryStats stats;
    std::unique_ptr<DurableSession> recovered;
    ASSERT_EQ(DurableSession::Recover(crashed, PersistOptions{}, &recovered,
                                      &stats),
              EngineStatus::kOk)
        << "boundary " << i;
    EXPECT_EQ(stats.records_replayed, i) << "boundary " << i;
    EXPECT_EQ(recovered->next_lsn(), i) << "boundary " << i;

    OracleState oracle(i);
    ASSERT_EQ(oracle.runner.queries.size(),
              recovered->incremental().num_queries());
    for (size_t q = 0; q < oracle.runner.queries.size(); ++q) {
      const EngineResult want =
          oracle.inc->Probability(oracle.runner.queries[q]);
      const EngineResult got = recovered->Probability(q);
      ASSERT_EQ(got.status, EngineStatus::kOk) << "boundary " << i;
      EXPECT_EQ(got.value, want.value)
          << "boundary " << i << " query " << q;
    }

    // The recovered session must keep accepting durable mutations
    // (the writer re-armed on the truncated log).
    if (recovered->session().pcc().events().size() > 0) {
      ASSERT_EQ(recovered->UpdateProbability(0, 0.5), EngineStatus::kOk)
          << "boundary " << i;
    } else {
      ASSERT_EQ(recovered->InsertFact(0, {0, 1}, 0.5), EngineStatus::kOk)
          << "boundary " << i;
    }
    recovered.reset();
    fs::remove_all(crashed);

    // Crash *inside* record i (torn tail): same surviving prefix, plus
    // a truncation recovery must report.
    if (i < steps.size()) {
      const uint64_t frame = boundaries[i + 1] - boundaries[i];
      const std::string torn =
          FreshDir("fuzz_torn_" + std::to_string(i));
      CopyDir(master, torn);
      fs::resize_file(torn + "/wal-0.log", boundaries[i] + frame / 2);

      RecoveryStats torn_stats;
      std::unique_ptr<DurableSession> torn_recovered;
      ASSERT_EQ(DurableSession::Recover(torn, PersistOptions{},
                                        &torn_recovered, &torn_stats),
                EngineStatus::kOk)
          << "torn " << i;
      EXPECT_EQ(torn_stats.records_replayed, i) << "torn " << i;
      EXPECT_GT(torn_stats.torn_bytes_truncated, 0u) << "torn " << i;
      EXPECT_EQ(torn_recovered->next_lsn(), i) << "torn " << i;

      OracleState torn_oracle(i);
      for (size_t q = 0; q < torn_oracle.runner.queries.size(); ++q) {
        const EngineResult want =
            torn_oracle.inc->Probability(torn_oracle.runner.queries[q]);
        const EngineResult got = torn_recovered->Probability(q);
        EXPECT_EQ(got.value, want.value) << "torn " << i << " query " << q;
      }
      torn_recovered.reset();
      fs::remove_all(torn);
    }
  }
  fs::remove_all(master);
}

// A flipped bit anywhere in a record that is *not* the final one can
// never look like a torn tail: recovery must answer kIoError, and must
// never abort or return a session.
TEST(CrashPointFuzzTest, MidLogBitFlipIsTypedIoError) {
  const std::vector<Step> steps = Script();
  const std::string master = FreshDir("flip_master");
  {
    incremental::EpochManager epochs;
    std::unique_ptr<DurableSession> durable;
    ASSERT_EQ(DurableSession::Create(master, EdgeSchema(), PersistOptions{},
                                     &durable),
              EngineStatus::kOk);
    Runner runner;
    runner.durable = durable.get();
    runner.epochs = &epochs;
    runner.Apply(steps, steps.size());
    ASSERT_EQ(durable->Sync(), EngineStatus::kOk);
  }
  const std::vector<uint64_t> boundaries =
      RecordBoundaries(master + "/wal-0.log", steps.size());

  // Flip one bit inside each non-final record's frame.
  for (size_t i = 0; i + 1 < steps.size(); ++i) {
    const std::string flipped =
        FreshDir("flip_" + std::to_string(i));
    CopyDir(master, flipped);
    {
      std::fstream f(flipped + "/wal-0.log",
                     std::ios::in | std::ios::out | std::ios::binary);
      const uint64_t pos = boundaries[i] + (boundaries[i + 1] -
                                            boundaries[i]) / 2;
      f.seekg(static_cast<std::streamoff>(pos));
      char byte = 0;
      f.read(&byte, 1);
      byte ^= 0x10;
      f.seekp(static_cast<std::streamoff>(pos));
      f.write(&byte, 1);
    }
    std::unique_ptr<DurableSession> recovered;
    EXPECT_EQ(DurableSession::Recover(flipped, PersistOptions{}, &recovered,
                                      nullptr),
              EngineStatus::kIoError)
        << "record " << i;
    EXPECT_EQ(recovered, nullptr);
    fs::remove_all(flipped);
  }
  fs::remove_all(master);
}

// Recovered state must plug straight back into the serving stack:
// publish an epoch from the recovered session and answer through
// EpochedServingSession, bit-identical to the oracle.
TEST(RecoveredServingTest, RecoveredSessionServesEpochs) {
  const std::vector<Step> steps = Script();
  const std::string dir = FreshDir("serve");
  {
    incremental::EpochManager epochs;
    std::unique_ptr<DurableSession> durable;
    ASSERT_EQ(DurableSession::Create(dir, EdgeSchema(), PersistOptions{},
                                     &durable),
              EngineStatus::kOk);
    Runner runner;
    runner.durable = durable.get();
    runner.epochs = &epochs;
    runner.Apply(steps, steps.size());
    ASSERT_EQ(durable->Sync(), EngineStatus::kOk);
  }

  std::unique_ptr<DurableSession> recovered;
  ASSERT_EQ(DurableSession::Recover(dir, PersistOptions{}, &recovered,
                                    nullptr),
            EngineStatus::kOk);

  incremental::EpochManager epochs;
  ASSERT_EQ(recovered->PublishSnapshot(epochs), EngineStatus::kOk);

  OracleState oracle(steps.size());
  serving::ServingOptions options;
  options.num_threads = 2;
  serving::EpochedServingSession serving(epochs, options);
  for (size_t q = 0; q < oracle.runner.queries.size(); ++q) {
    const EngineResult want =
        oracle.inc->Probability(oracle.runner.queries[q]);
    const EngineResult got = serving.Submit(q).get();
    ASSERT_EQ(got.status, EngineStatus::kOk);
    EXPECT_EQ(got.value, want.value) << "query " << q;
  }
  serving.Drain();
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Injected I/O faults (TUD_FAULT_INJECTION builds)
// ---------------------------------------------------------------------------

// An append stream under injected short writes: the session reports
// kIoError from the failing append on, and recovery reconstructs
// exactly the acknowledged prefix — the torn half-frame the fault left
// on disk is truncated, not misread.
TEST(IoFaultTest, ShortWriteLosesOnlyUnacknowledgedMutations) {
  if (!fault::kEnabled) GTEST_SKIP() << "built without TUD_FAULT_INJECTION";
  const std::string dir = FreshDir("short_write");
  std::unique_ptr<DurableSession> durable;
  ASSERT_EQ(DurableSession::Create(dir, EdgeSchema(), PersistOptions{},
                                   &durable),
            EngineStatus::kOk);

  size_t acknowledged = 0;
  {
    fault::Config config;
    config.io_write_failure_probability = 0.12;
    config.seed = 19;
    fault::ScopedFaultInjection scope(config);
    for (Value v = 0; v < 64; ++v) {
      const EngineStatus status =
          durable->InsertFact(0, {v, v + 1}, 0.5);
      if (status != EngineStatus::kOk) {
        EXPECT_EQ(status, EngineStatus::kIoError);
        break;
      }
      ++acknowledged;
    }
    // The stream is long enough that the fault must have fired.
    ASSERT_LT(acknowledged, 64u);
    EXPECT_TRUE(durable->writer_broken());
    // Once broken, every further mutation fails typed.
    EXPECT_EQ(durable->InsertFact(0, {99, 100}, 0.5),
              EngineStatus::kIoError);
  }
  durable.reset();

  RecoveryStats stats;
  std::unique_ptr<DurableSession> recovered;
  ASSERT_EQ(DurableSession::Recover(dir, PersistOptions{}, &recovered,
                                    &stats),
            EngineStatus::kOk);
  EXPECT_EQ(stats.records_replayed, acknowledged);
  EXPECT_GT(stats.torn_bytes_truncated, 0u);
  EXPECT_EQ(recovered->session().pcc().NumFacts(), acknowledged);
  fs::remove_all(dir);
}

// A checkpoint whose write or fsync fails must stay invisible: the
// .tmp file is never renamed, Checkpoint() reports kIoError, and
// recovery proceeds from the previous checkpoint + full WAL.
TEST(IoFaultTest, FailedCheckpointIsInvisibleToRecovery) {
  if (!fault::kEnabled) GTEST_SKIP() << "built without TUD_FAULT_INJECTION";
  const std::string dir = FreshDir("ckpt_fault");
  std::unique_ptr<DurableSession> durable;
  ASSERT_EQ(DurableSession::Create(dir, EdgeSchema(), PersistOptions{},
                                   &durable),
            EngineStatus::kOk);
  for (Value v = 0; v < 8; ++v)
    ASSERT_EQ(durable->InsertFact(0, {v, v + 1}, 0.5), EngineStatus::kOk);
  ASSERT_EQ(durable->RegisterReachability(0, 0, 8), EngineStatus::kOk);

  {
    fault::Config config;
    config.io_write_failure_probability = 1.0;
    config.seed = 5;
    fault::ScopedFaultInjection scope(config);
    EXPECT_EQ(durable->Checkpoint(), EngineStatus::kIoError);
  }
  EXPECT_EQ(durable->checkpoint_seq(), 0u);
  ASSERT_EQ(durable->Sync(), EngineStatus::kOk);
  durable.reset();

  RecoveryStats stats;
  std::unique_ptr<DurableSession> recovered;
  ASSERT_EQ(DurableSession::Recover(dir, PersistOptions{}, &recovered,
                                    &stats),
            EngineStatus::kOk);
  EXPECT_EQ(stats.checkpoint_seq, 0u);
  EXPECT_EQ(stats.records_replayed, 9u);
  EXPECT_EQ(recovered->session().pcc().NumFacts(), 8u);
  fs::remove_all(dir);
}

// An injected bit flip corrupts the payload *after* its checksum was
// computed — the on-disk record carries a CRC that no longer matches.
// The write itself succeeds (the fault is silent), so the session keeps
// going; the flip must surface at recovery as a typed kIoError.
TEST(IoFaultTest, SilentBitFlipSurfacesAtRecovery) {
  if (!fault::kEnabled) GTEST_SKIP() << "built without TUD_FAULT_INJECTION";
  const std::string dir = FreshDir("bit_flip");
  std::unique_ptr<DurableSession> durable;
  ASSERT_EQ(DurableSession::Create(dir, EdgeSchema(), PersistOptions{},
                                   &durable),
            EngineStatus::kOk);
  {
    fault::Config config;
    config.io_bit_flip_probability = 1.0;  // Every append is corrupted.
    config.seed = 3;
    fault::ScopedFaultInjection scope(config);
    // The append succeeds — the corruption is silent by design.
    ASSERT_EQ(durable->InsertFact(0, {0, 1}, 0.5), EngineStatus::kOk);
    EXPECT_GT(fault::BitFlips(), 0u);
  }
  // A second, clean record behind the corrupt one makes the damage
  // mid-log: unrecoverable, typed.
  ASSERT_EQ(durable->InsertFact(0, {1, 2}, 0.5), EngineStatus::kOk);
  ASSERT_EQ(durable->Sync(), EngineStatus::kOk);
  durable.reset();

  std::unique_ptr<DurableSession> recovered;
  EXPECT_EQ(DurableSession::Recover(dir, PersistOptions{}, &recovered,
                                    nullptr),
            EngineStatus::kIoError);
  fs::remove_all(dir);
}

// Failed fsync: the sync (and the mutation that triggered it with
// sync_each_append) reports kIoError and the writer is broken —
// durability is never silently downgraded.
TEST(IoFaultTest, FailedFsyncBreaksTheWriterTyped) {
  if (!fault::kEnabled) GTEST_SKIP() << "built without TUD_FAULT_INJECTION";
  const std::string dir = FreshDir("fsync_fault");
  PersistOptions options;
  options.sync_each_append = true;
  std::unique_ptr<DurableSession> durable;
  ASSERT_EQ(DurableSession::Create(dir, EdgeSchema(), options, &durable),
            EngineStatus::kOk);
  ASSERT_EQ(durable->InsertFact(0, {0, 1}, 0.5), EngineStatus::kOk);
  {
    fault::Config config;
    config.io_flush_failure_probability = 1.0;
    config.seed = 11;
    fault::ScopedFaultInjection scope(config);
    EXPECT_EQ(durable->InsertFact(0, {1, 2}, 0.5), EngineStatus::kIoError);
    EXPECT_GT(fault::FlushFailures(), 0u);
  }
  EXPECT_TRUE(durable->writer_broken());
  EXPECT_EQ(durable->InsertFact(0, {2, 3}, 0.5), EngineStatus::kIoError);
  durable.reset();

  // The record whose fsync failed may or may not have reached the file
  // (here: it did, fsync happens after write) — either way recovery is
  // clean and keeps a coherent prefix.
  RecoveryStats stats;
  std::unique_ptr<DurableSession> recovered;
  ASSERT_EQ(DurableSession::Recover(dir, PersistOptions{}, &recovered,
                                    &stats),
            EngineStatus::kOk);
  EXPECT_GE(stats.records_replayed, 1u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace persist
}  // namespace tud
