#include <string>

#include "gtest/gtest.h"
#include "prxml/fcns.h"
#include "prxml/prxml_document.h"
#include "prxml/tree_pattern.h"
#include "prxml/xml_tree.h"
#include "uncertain/worlds.h"
#include "util/rng.h"

namespace tud {
namespace {

XmlTree RandomXml(Rng& rng, uint32_t num_nodes) {
  const char* labels[] = {"a", "b", "c"};
  XmlTree tree;
  tree.AddRoot(labels[rng.UniformInt(3)]);
  for (uint32_t i = 1; i < num_nodes; ++i) {
    XmlNodeId parent =
        static_cast<XmlNodeId>(rng.UniformInt(tree.NumNodes()));
    tree.AddChild(parent, labels[rng.UniformInt(3)]);
  }
  return tree;
}

int CountXmlLabel(const XmlTree& tree, const std::string& label) {
  int count = 0;
  for (XmlNodeId n = 0; n < tree.NumNodes(); ++n) {
    if (tree.label(n) == label) ++count;
  }
  return count;
}

TEST(FcnsTest, EncodingShape) {
  XmlTree tree;
  XmlNodeId root = tree.AddRoot("r");
  tree.AddChild(root, "a");
  tree.AddChild(root, "b");
  XmlLabelMap labels;
  BinaryTree bin = FcnsEncode(tree, labels);
  // 3 XML nodes + 4 nil leaves (a's child slot, b's child and sibling
  // slots, r's sibling slot... plus b's own child slot): exactly
  // 2 * #xml + 1 binary nodes.
  EXPECT_EQ(bin.NumNodes(), 2 * tree.NumNodes() + 1);
  // Root of the encoding carries the XML root's label.
  EXPECT_EQ(bin.label(bin.root()), labels.Find("r"));
  // Every internal node corresponds to an XML node (non-nil label).
  for (TreeNodeId n = 0; n < bin.NumNodes(); ++n) {
    EXPECT_EQ(bin.IsLeaf(n), bin.label(n) == XmlLabelMap::kNil);
  }
}

TEST(FcnsTest, LabelMapReservesNil) {
  XmlLabelMap labels;
  EXPECT_EQ(labels.Find("missing"), XmlLabelMap::kNil);
  Label a = labels.Intern("a");
  EXPECT_GT(a, 0u);
  EXPECT_EQ(labels.Intern("a"), a);
  EXPECT_EQ(labels.AlphabetSize(), 2u);
}

class FcnsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FcnsPropertyTest, ExistsLabelMatchesXmlCount) {
  Rng rng(GetParam());
  XmlTree tree = RandomXml(rng, 3 + rng.UniformInt(15));
  XmlLabelMap labels;
  BinaryTree bin = FcnsEncode(tree, labels);
  for (const char* name : {"a", "b", "c"}) {
    Label l = labels.Find(name);
    bool expected = CountXmlLabel(tree, name) > 0;
    if (l == XmlLabelMap::kNil) {
      EXPECT_FALSE(expected);
      continue;
    }
    TreeAutomaton automaton =
        MakeFcnsExistsLabel(labels.AlphabetSize(), l);
    EXPECT_EQ(automaton.Accepts(bin), expected) << name;
  }
}

TEST_P(FcnsPropertyTest, XmlDescendantAutomatonMatchesTreePattern) {
  Rng rng(GetParam() + 100);
  XmlTree tree = RandomXml(rng, 3 + rng.UniformInt(15));
  XmlLabelMap labels;
  Label la = labels.Intern("a");
  Label lb = labels.Intern("b");
  BinaryTree bin = FcnsEncode(tree, labels);
  TreeAutomaton automaton =
      MakeFcnsExistsBBelowA(labels.AlphabetSize(), la, lb);
  bool by_pattern = TreePattern::AncestorDescendant("a", "b").Matches(tree);
  EXPECT_EQ(automaton.Accepts(bin), by_pattern) << tree.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FcnsPropertyTest, ::testing::Range(0, 30));

// End-to-end with PrXML possible worlds: the automaton on the FCNS
// encoding of each world agrees with the pattern matcher on the world.
TEST(FcnsTest, AgreesAcrossPrXmlWorlds) {
  PrXmlDocument doc;
  EventId e = doc.events().Register("e", 0.5);
  PNodeId root = doc.AddRoot("a");
  PNodeId ind = doc.AddChild(root, PNodeKind::kInd, "");
  PNodeId mid = doc.AddChild(ind, PNodeKind::kOrdinary, "c");
  doc.SetEdgeProbability(mid, 0.5);
  doc.AddChild(mid, PNodeKind::kOrdinary, "b");
  PNodeId cie = doc.AddChild(root, PNodeKind::kCie, "");
  PNodeId other = doc.AddChild(cie, PNodeKind::kOrdinary, "b");
  doc.SetEdgeLiterals(other, {{e, false}});
  doc.Finalize();

  TreePattern pattern = TreePattern::AncestorDescendant("a", "b");
  ForEachWorld(doc.events(), [&](const Valuation& v, double p) {
    (void)p;
    XmlTree world = doc.World(v);
    XmlLabelMap labels;
    Label la = labels.Intern("a");
    Label lb = labels.Intern("b");
    BinaryTree bin = FcnsEncode(world, labels);
    TreeAutomaton automaton =
        MakeFcnsExistsBBelowA(labels.AlphabetSize(), la, lb);
    EXPECT_EQ(automaton.Accepts(bin), pattern.Matches(world));
  });
}

}  // namespace
}  // namespace tud

// ---------------------------------------------------------------------------
// The full §2.1 → §2.2 reduction: PrXML → uncertain tree → automaton
// provenance run → probability.
// ---------------------------------------------------------------------------

#include "automata/automaton_library.h"
#include "automata/provenance_run.h"
#include "inference/exhaustive.h"
#include "inference/junction_tree.h"
#include "prxml/pattern_eval.h"
#include "prxml/to_uncertain_tree.h"

namespace tud {
namespace {

PrXmlDocument SmallMixedDoc() {
  PrXmlDocument doc;
  EventId e = doc.events().Register("trust", 0.7);
  PNodeId root = doc.AddRoot("a");
  PNodeId ind = doc.AddChild(root, PNodeKind::kInd, "");
  PNodeId mid = doc.AddChild(ind, PNodeKind::kOrdinary, "c");
  doc.SetEdgeProbability(mid, 0.5);
  doc.AddChild(mid, PNodeKind::kOrdinary, "b");
  PNodeId mux = doc.AddChild(root, PNodeKind::kMux, "");
  PNodeId x = doc.AddChild(mux, PNodeKind::kOrdinary, "b");
  doc.SetEdgeProbability(x, 0.3);
  PNodeId y = doc.AddChild(mux, PNodeKind::kOrdinary, "c");
  doc.SetEdgeProbability(y, 0.4);
  PNodeId cie = doc.AddChild(root, PNodeKind::kCie, "");
  PNodeId z = doc.AddChild(cie, PNodeKind::kOrdinary, "b");
  doc.SetEdgeLiterals(z, {{e, true}});
  doc.Finalize();
  return doc;
}

TEST(PrXmlAutomatonTest, TranslationWorldsMatchDocumentWorlds) {
  PrXmlDocument doc = SmallMixedDoc();
  XmlLabelMap labels;
  Label dead;
  UncertainBinaryTree tree = PrXmlToUncertainTree(doc, labels, &dead);
  ForEachWorld(doc.events(), [&](const Valuation& v, double p) {
    (void)p;
    ASSERT_TRUE(tree.IsWellFormedUnder(v));
    // Count live (non-dead, non-nil) labels in the uncertain tree's
    // world; must equal the document world's node count.
    BinaryTree world = tree.World(v);
    size_t live = 0;
    for (TreeNodeId n = 0; n < world.NumNodes(); ++n) {
      if (world.label(n) != dead && world.label(n) != XmlLabelMap::kNil) {
        ++live;
      }
    }
    EXPECT_EQ(live, doc.World(v).NumNodes());
  });
}

TEST(PrXmlAutomatonTest, AutomatonPipelineMatchesPatternLineage) {
  PrXmlDocument doc = SmallMixedDoc();
  // Query: some XML node labeled a has a strict XML descendant b.
  XmlLabelMap labels;
  Label dead;
  UncertainBinaryTree tree = PrXmlToUncertainTree(doc, labels, &dead);
  Label la = labels.Find("a");
  Label lb = labels.Find("b");
  TreeAutomaton automaton =
      MakeFcnsExistsBBelowA(tree.AlphabetSize(), la, lb);
  GateId lineage = ProvenanceRun(automaton, tree);
  double by_automaton =
      ExhaustiveProbability(tree.circuit(), lineage, doc.events());

  PrXmlDocument doc2 = SmallMixedDoc();
  TreePattern pattern = TreePattern::AncestorDescendant("a", "b");
  GateId pattern_lineage = PatternLineage(pattern, doc2);
  double by_pattern = ExhaustiveProbability(doc2.circuit(), pattern_lineage,
                                            doc2.events());
  EXPECT_NEAR(by_automaton, by_pattern, 1e-12);

  // And via the convenience wrapper with message passing.
  XmlLabelMap labels2;
  labels2.Intern("a");
  labels2.Intern("c");
  labels2.Intern("b");
  TreeAutomaton wide = MakeFcnsExistsBBelowA(labels2.AlphabetSize() + 1,
                                             labels2.Find("a"),
                                             labels2.Find("b"));
  EXPECT_NEAR(AutomatonProbability(wide, doc, labels2), by_pattern, 1e-12);
}

TEST(PrXmlAutomatonTest, CountingAutomatonOnUncertainTree) {
  PrXmlDocument doc = SmallMixedDoc();
  XmlLabelMap labels;
  Label dead;
  UncertainBinaryTree tree = PrXmlToUncertainTree(doc, labels, &dead);
  Label lb = labels.Find("b");
  // P(at least two b-nodes) via automaton == by enumeration.
  TreeAutomaton two_bs = MakeCountAtLeast(tree.AlphabetSize(), lb, 2);
  GateId lineage = ProvenanceRun(two_bs, tree);
  double by_automaton =
      ExhaustiveProbability(tree.circuit(), lineage, doc.events());
  double by_worlds = ProbabilityByEnumeration(
      doc.events(), [&](const Valuation& v) {
        XmlTree world = doc.World(v);
        int count = 0;
        for (XmlNodeId n = 0; n < world.NumNodes(); ++n) {
          if (world.label(n) == "b") ++count;
        }
        return count >= 2;
      });
  EXPECT_NEAR(by_automaton, by_worlds, 1e-12);
}

}  // namespace
}  // namespace tud
