#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "inference/junction_tree.h"
#include "inference/possibility.h"
#include "queries/answers.h"
#include "uncertain/c_instance.h"
#include "uncertain/pcc_instance.h"
#include "uncertain/tid_instance.h"
#include "util/rng.h"

namespace tud {
namespace {

Schema MakeRst() {
  Schema schema;
  schema.AddRelation("R", 1);
  schema.AddRelation("S", 2);
  schema.AddRelation("T", 1);
  return schema;
}

TEST(EvaluateAnswersTest, FreeVariableProjection) {
  Instance instance(MakeRst());
  instance.AddFact(1, {0, 1});
  instance.AddFact(1, {0, 2});
  instance.AddFact(1, {3, 4});
  ConjunctiveQuery q;
  q.AddAtom(1, {Term::V(0), Term::V(1)});
  // Answers over the first column.
  EXPECT_EQ(EvaluateAnswers(q, {0}, instance),
            (std::set<std::vector<Value>>{{0}, {3}}));
  // Both columns.
  EXPECT_EQ(EvaluateAnswers(q, {0, 1}, instance),
            (std::set<std::vector<Value>>{{0, 1}, {0, 2}, {3, 4}}));
  // Boolean projection: empty tuple iff nonempty.
  EXPECT_EQ(EvaluateAnswers(q, {}, instance),
            (std::set<std::vector<Value>>{{}}));
}

TEST(BindVariablesTest, SubstitutesConstants) {
  ConjunctiveQuery q;
  q.AddAtom(1, {Term::V(0), Term::V(1)});
  q.AddAtom(0, {Term::V(0)});
  ConjunctiveQuery bound = BindVariables(q, {0}, {7});
  EXPECT_EQ(bound.atom(0).terms[0], Term::C(7));
  EXPECT_EQ(bound.atom(0).terms[1], Term::V(1));
  EXPECT_EQ(bound.atom(1).terms[0], Term::C(7));
}

TEST(AnswerLineagesTest, PerAnswerProbabilities) {
  // S(a, x) with a uncertain per edge: answers are the endpoints, each
  // with its own edge's probability.
  TidInstance tid(MakeRst());
  tid.AddFact(1, {0, 1}, 0.3);
  tid.AddFact(1, {0, 2}, 0.6);
  PccInstance pcc = PccInstance::FromCInstance(tid.ToPcInstance());
  ConjunctiveQuery q;
  q.AddAtom(1, {Term::C(0), Term::V(0)});
  auto answers = ComputeAnswerLineages(q, {0}, pcc);
  ASSERT_EQ(answers.size(), 2u);
  for (const AnswerLineage& a : answers) {
    double p =
        JunctionTreeProbability(pcc.circuit(), a.lineage, pcc.events());
    if (a.tuple == std::vector<Value>{1}) {
      EXPECT_NEAR(p, 0.3, 1e-12);
    } else {
      EXPECT_EQ(a.tuple, (std::vector<Value>{2}));
      EXPECT_NEAR(p, 0.6, 1e-12);
    }
  }
}

TEST(AnswerLineagesTest, PossibleAndCertainAnswers) {
  PccInstance pcc(MakeRst());
  GateId certain = pcc.circuit().AddConst(true);
  EventId e = pcc.events().Register("e", 0.5);
  GateId maybe = pcc.circuit().AddVar(e);
  GateId never = pcc.circuit().AddAnd(maybe, pcc.circuit().AddNot(maybe));
  pcc.AddFact(0, {0}, certain);
  pcc.AddFact(0, {1}, maybe);
  pcc.AddFact(0, {2}, never);
  ConjunctiveQuery q;
  q.AddAtom(0, {Term::V(0)});
  auto answers = ComputeAnswerLineages(q, {0}, pcc);
  // All three support answers are returned ('never' has a
  // non-constant but unsatisfiable gate: contradiction detection is the
  // job of IsSatisfiable, not of structural folding).
  ASSERT_EQ(answers.size(), 3u);
  for (const AnswerLineage& a : answers) {
    bool possible = IsSatisfiable(pcc.circuit(), a.lineage);
    EXPECT_EQ(possible, a.tuple != std::vector<Value>{2}) << a.tuple[0];
    bool is_certain = IsValid(pcc.circuit(), a.lineage);
    EXPECT_EQ(is_certain, a.tuple == std::vector<Value>{0}) << a.tuple[0];
  }
}

// Property: per-world, the answers of the world equal the tuples whose
// lineage is true.
class AnswerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AnswerPropertyTest, LineageMatchesPerWorldAnswers) {
  Rng rng(GetParam());
  TidInstance tid(MakeRst());
  const uint32_t n = 4;
  for (Value v = 0; v < n; ++v) {
    if (rng.Bernoulli(0.8)) tid.AddFact(0, {v}, 0.5);
    if (rng.Bernoulli(0.8)) tid.AddFact(2, {v}, 0.5);
    if (v + 1 < n && rng.Bernoulli(0.9)) tid.AddFact(1, {v, v + 1}, 0.5);
  }
  PccInstance pcc = PccInstance::FromCInstance(tid.ToPcInstance());
  const size_t num_events = pcc.events().size();
  ASSERT_LE(num_events, 13u);

  // q(x) = R(x) ∧ S(x, y): answers are R-elements with an outgoing S.
  ConjunctiveQuery q;
  q.AddAtom(0, {Term::V(0)});
  q.AddAtom(1, {Term::V(0), Term::V(1)});
  auto answers = ComputeAnswerLineages(q, {0}, pcc);

  for (uint64_t mask = 0; mask < (1ULL << num_events); ++mask) {
    Valuation v = Valuation::FromMask(mask, num_events);
    std::set<std::vector<Value>> world_answers =
        EvaluateAnswers(q, {0}, pcc.World(v));
    std::set<std::vector<Value>> lineage_answers;
    for (const AnswerLineage& a : answers) {
      if (pcc.circuit().Evaluate(a.lineage, v)) {
        lineage_answers.insert(a.tuple);
      }
    }
    EXPECT_EQ(lineage_answers, world_answers) << "mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnswerPropertyTest, ::testing::Range(0, 12));

TEST(PossibilityTest, SatisfiabilityAndValidity) {
  BoolCircuit c;
  GateId a = c.AddVar(0);
  GateId b = c.AddVar(1);
  EXPECT_TRUE(IsSatisfiable(c, c.AddAnd(a, b)));
  EXPECT_FALSE(IsValid(c, c.AddAnd(a, b)));
  EXPECT_TRUE(IsValid(c, c.AddOr(a, c.AddNot(a))));
  EXPECT_FALSE(IsSatisfiable(c, c.AddAnd(a, c.AddNot(a))));
  EXPECT_TRUE(IsValid(c, c.AddConst(true)));
  EXPECT_FALSE(IsSatisfiable(c, c.AddConst(false)));
}

TEST(PossibilityTest, AgreesWithProbabilityBounds) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    BoolCircuit c;
    EventRegistry registry;
    std::vector<GateId> pool;
    for (EventId e = 0; e < 5; ++e) {
      registry.Register("e" + std::to_string(e), 0.5);
      pool.push_back(c.AddVar(e));
    }
    for (int i = 0; i < 15; ++i) {
      GateId x = pool[rng.UniformInt(pool.size())];
      GateId y = pool[rng.UniformInt(pool.size())];
      switch (rng.UniformInt(3)) {
        case 0:
          pool.push_back(c.AddNot(x));
          break;
        case 1:
          pool.push_back(c.AddAnd(x, y));
          break;
        default:
          pool.push_back(c.AddOr(x, y));
      }
    }
    GateId root = pool.back();
    double p = JunctionTreeProbability(c, root, registry);
    EXPECT_EQ(IsSatisfiable(c, root), p > 0.0);
    EXPECT_EQ(IsValid(c, root), p == 1.0);
  }
}

}  // namespace
}  // namespace tud
