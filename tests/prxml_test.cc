#include <cmath>

#include "gtest/gtest.h"
#include "inference/exhaustive.h"
#include "inference/junction_tree.h"
#include "prxml/pattern_eval.h"
#include "prxml/prxml_document.h"
#include "prxml/tree_pattern.h"
#include "prxml/xml_tree.h"
#include "uncertain/worlds.h"
#include "util/rng.h"

namespace tud {
namespace {

TEST(XmlTreeTest, Construction) {
  XmlTree t;
  XmlNodeId root = t.AddRoot("doc");
  XmlNodeId a = t.AddChild(root, "a");
  XmlNodeId b = t.AddChild(a, "b");
  EXPECT_EQ(t.NumNodes(), 3u);
  EXPECT_EQ(t.parent(b), a);
  EXPECT_EQ(t.children(root).size(), 1u);
}

TEST(TreePatternTest, MatchesChildAndDescendant) {
  XmlTree t;
  XmlNodeId root = t.AddRoot("doc");
  XmlNodeId person = t.AddChild(root, "person");
  t.AddChild(person, "name");

  EXPECT_TRUE(TreePattern::LabelExists("name").Matches(t));
  EXPECT_FALSE(TreePattern::LabelExists("title").Matches(t));
  EXPECT_TRUE(TreePattern::AncestorDescendant("doc", "name").Matches(t));
  EXPECT_FALSE(TreePattern::AncestorDescendant("name", "doc").Matches(t));

  // Child axis is strict: doc/name does not hold, doc/person does.
  TreePattern child_pattern;
  PatternNodeId r = child_pattern.AddRoot("doc");
  child_pattern.AddChild(r, "name", PatternAxis::kChild);
  EXPECT_FALSE(child_pattern.Matches(t));
  TreePattern person_pattern;
  r = person_pattern.AddRoot("doc");
  person_pattern.AddChild(r, "person", PatternAxis::kChild);
  EXPECT_TRUE(person_pattern.Matches(t));
}

TEST(TreePatternTest, WildcardAndBranching) {
  XmlTree t;
  XmlNodeId root = t.AddRoot("doc");
  XmlNodeId p = t.AddChild(root, "person");
  t.AddChild(p, "name");
  t.AddChild(p, "age");

  TreePattern both;
  PatternNodeId r = both.AddRoot("");
  both.AddChild(r, "name", PatternAxis::kChild);
  both.AddChild(r, "age", PatternAxis::kChild);
  EXPECT_TRUE(both.Matches(t));

  TreePattern missing;
  r = missing.AddRoot("");
  missing.AddChild(r, "name", PatternAxis::kChild);
  missing.AddChild(r, "email", PatternAxis::kChild);
  EXPECT_FALSE(missing.Matches(t));
}

// ---------------------------------------------------------------------------
// The paper's Figure 1 document.
// ---------------------------------------------------------------------------

class Figure1Test : public ::testing::Test {
 protected:
  Figure1Test() {
    e_jane_ = doc_.events().Register("eJane", 0.9);
    PNodeId root = doc_.AddRoot("Q298423");

    // ind child: "occupation: musician" with probability 0.4.
    PNodeId ind = doc_.AddChild(root, PNodeKind::kInd, "");
    PNodeId occupation =
        doc_.AddChild(ind, PNodeKind::kOrdinary, "occupation");
    doc_.SetEdgeProbability(occupation, 0.4);
    doc_.AddChild(occupation, PNodeKind::kOrdinary, "musician");

    // cie children guarded by eJane: place of birth, surname.
    PNodeId cie1 = doc_.AddChild(root, PNodeKind::kCie, "");
    PNodeId pob =
        doc_.AddChild(cie1, PNodeKind::kOrdinary, "place of birth");
    doc_.SetEdgeLiterals(pob, {{e_jane_, true}});
    doc_.AddChild(pob, PNodeKind::kOrdinary, "Crescent");

    PNodeId cie2 = doc_.AddChild(root, PNodeKind::kCie, "");
    PNodeId surname = doc_.AddChild(cie2, PNodeKind::kOrdinary, "surname");
    doc_.SetEdgeLiterals(surname, {{e_jane_, true}});
    doc_.AddChild(surname, PNodeKind::kOrdinary, "Manning");

    // mux child: given name = Bradley (0.4) or Chelsea (0.6).
    PNodeId given =
        doc_.AddChild(root, PNodeKind::kOrdinary, "given name");
    PNodeId mux = doc_.AddChild(given, PNodeKind::kMux, "");
    PNodeId bradley = doc_.AddChild(mux, PNodeKind::kOrdinary, "Bradley");
    doc_.SetEdgeProbability(bradley, 0.4);
    PNodeId chelsea = doc_.AddChild(mux, PNodeKind::kOrdinary, "Chelsea");
    doc_.SetEdgeProbability(chelsea, 0.6);

    doc_.Finalize();
  }

  double PatternProbability(const TreePattern& pattern) {
    GateId lineage = PatternLineage(pattern, doc_);
    return JunctionTreeProbability(doc_.circuit(), lineage, doc_.events());
  }

  PrXmlDocument doc_;
  EventId e_jane_;
};

TEST_F(Figure1Test, DocumentShape) {
  EXPECT_FALSE(doc_.IsLocal());  // Has cie nodes.
  EXPECT_EQ(doc_.NumOrdinaryNodes(), 10u);
}

TEST_F(Figure1Test, MarginalProbabilities) {
  EXPECT_NEAR(PatternProbability(TreePattern::LabelExists("musician")), 0.4,
              1e-12);
  EXPECT_NEAR(PatternProbability(TreePattern::LabelExists("Chelsea")), 0.6,
              1e-12);
  EXPECT_NEAR(PatternProbability(TreePattern::LabelExists("Bradley")), 0.4,
              1e-12);
  EXPECT_NEAR(PatternProbability(TreePattern::LabelExists("Manning")), 0.9,
              1e-12);
  EXPECT_NEAR(PatternProbability(TreePattern::LabelExists("Crescent")), 0.9,
              1e-12);
  // The root and "given name" are certain.
  EXPECT_NEAR(PatternProbability(TreePattern::LabelExists("given name")),
              1.0, 1e-12);
}

TEST_F(Figure1Test, JaneCorrelation) {
  // Surname and place of birth are perfectly correlated through eJane:
  // P(both) = P(either) = 0.9, not 0.81.
  TreePattern both;
  PatternNodeId r = both.AddRoot("Q298423");
  both.AddChild(r, "surname", PatternAxis::kChild);
  both.AddChild(r, "place of birth", PatternAxis::kChild);
  EXPECT_NEAR(PatternProbability(both), 0.9, 1e-12);
}

TEST_F(Figure1Test, MuxChoicesAreExclusive) {
  TreePattern impossible;
  PatternNodeId r = impossible.AddRoot("given name");
  impossible.AddChild(r, "Bradley", PatternAxis::kChild);
  impossible.AddChild(r, "Chelsea", PatternAxis::kChild);
  EXPECT_NEAR(PatternProbability(impossible), 0.0, 1e-12);
}

TEST_F(Figure1Test, WorldEnumerationMatchesLineage) {
  TreePattern pattern = TreePattern::AncestorDescendant("Q298423", "Manning");
  GateId lineage = PatternLineage(pattern, doc_);
  double by_enumeration = ProbabilityByEnumeration(
      doc_.events(), [&](const Valuation& v) {
        return pattern.Matches(doc_.World(v));
      });
  double by_circuit =
      ExhaustiveProbability(doc_.circuit(), lineage, doc_.events());
  EXPECT_NEAR(by_circuit, by_enumeration, 1e-12);
}

TEST_F(Figure1Test, ScopesMatchPaperIllustration) {
  auto scopes = doc_.NodeScopes();
  // Scope of eJane among the *ordinary* nodes: "surname" and "place of
  // birth" and their descendants, exactly as the paper illustrates.
  // (The distributional cie nodes on the connecting region are
  // implementation artifacts and not part of the comparison.)
  for (PNodeId n = 0; n < doc_.NumNodes(); ++n) {
    if (doc_.kind(n) != PNodeKind::kOrdinary) continue;
    bool expected = doc_.label(n) == "place of birth" ||
                    doc_.label(n) == "Crescent" ||
                    doc_.label(n) == "surname" ||
                    doc_.label(n) == "Manning";
    bool in_scope = !scopes[n].empty();
    EXPECT_EQ(in_scope, expected) << "node " << n << " '" << doc_.label(n)
                                  << "'";
  }
  EXPECT_EQ(doc_.MaxScopeSize(), 1u);
}

// ---------------------------------------------------------------------------
// Local documents: world semantics, fast path, property sweeps.
// ---------------------------------------------------------------------------

class LocalDocTest : public ::testing::Test {
 protected:
  LocalDocTest() {
    PNodeId root = doc_.AddRoot("doc");
    PNodeId ind = doc_.AddChild(root, PNodeKind::kInd, "");
    PNodeId a = doc_.AddChild(ind, PNodeKind::kOrdinary, "a");
    doc_.SetEdgeProbability(a, 0.5);
    PNodeId mux = doc_.AddChild(a, PNodeKind::kMux, "");
    PNodeId b = doc_.AddChild(mux, PNodeKind::kOrdinary, "b");
    doc_.SetEdgeProbability(b, 0.25);
    PNodeId c = doc_.AddChild(mux, PNodeKind::kOrdinary, "c");
    doc_.SetEdgeProbability(c, 0.25);
    doc_.Finalize();
  }
  PrXmlDocument doc_;
};

TEST_F(LocalDocTest, IsLocalAndScopeFree) {
  EXPECT_TRUE(doc_.IsLocal());
  EXPECT_EQ(doc_.MaxScopeSize(), 0u);
}

TEST_F(LocalDocTest, FastPathMatchesLineagePipeline) {
  TreePattern patterns[] = {
      TreePattern::LabelExists("a"), TreePattern::LabelExists("b"),
      TreePattern::LabelExists("c"),
      TreePattern::AncestorDescendant("a", "b"),
      TreePattern::AncestorDescendant("doc", "c")};
  for (const TreePattern& p : patterns) {
    double fast = LocalPatternProbability(p, doc_);
    GateId lineage = PatternLineage(p, doc_);
    double exact =
        ExhaustiveProbability(doc_.circuit(), lineage, doc_.events());
    EXPECT_NEAR(fast, exact, 1e-12) << p.ToString();
  }
}

TEST_F(LocalDocTest, KnownProbabilities) {
  // P(a) = 0.5; P(b) = 0.5 * 0.25; P(b or c present) = 0.5 * 0.5.
  EXPECT_NEAR(LocalPatternProbability(TreePattern::LabelExists("a"), doc_),
              0.5, 1e-12);
  EXPECT_NEAR(LocalPatternProbability(TreePattern::LabelExists("b"), doc_),
              0.125, 1e-12);
}

TEST(LocalDocDeathTest, FastPathRejectsCie) {
  PrXmlDocument doc;
  EventId e = doc.events().Register("e", 0.5);
  PNodeId root = doc.AddRoot("doc");
  PNodeId cie = doc.AddChild(root, PNodeKind::kCie, "");
  PNodeId a = doc.AddChild(cie, PNodeKind::kOrdinary, "a");
  doc.SetEdgeLiterals(a, {{e, true}});
  doc.Finalize();
  EXPECT_DEATH(LocalPatternProbability(TreePattern::LabelExists("a"), doc),
               "local");
}

// Random local documents: the three evaluation routes agree.
PrXmlDocument RandomLocalDoc(Rng& rng, uint32_t num_ordinary) {
  PrXmlDocument doc;
  std::vector<PNodeId> ordinary = {doc.AddRoot("L0")};
  const char* labels[] = {"L0", "L1", "L2"};
  for (uint32_t i = 1; i < num_ordinary; ++i) {
    PNodeId parent = ordinary[rng.UniformInt(ordinary.size())];
    std::string label = labels[rng.UniformInt(3)];
    switch (rng.UniformInt(3)) {
      case 0: {  // Plain ordinary child.
        ordinary.push_back(
            doc.AddChild(parent, PNodeKind::kOrdinary, label));
        break;
      }
      case 1: {  // Via ind.
        PNodeId ind = doc.AddChild(parent, PNodeKind::kInd, "");
        PNodeId child = doc.AddChild(ind, PNodeKind::kOrdinary, label);
        doc.SetEdgeProbability(child, 0.2 + 0.6 * rng.UniformDouble());
        ordinary.push_back(child);
        break;
      }
      default: {  // Via mux with two alternatives.
        PNodeId mux = doc.AddChild(parent, PNodeKind::kMux, "");
        PNodeId child = doc.AddChild(mux, PNodeKind::kOrdinary, label);
        doc.SetEdgeProbability(child, 0.4);
        PNodeId other = doc.AddChild(
            mux, PNodeKind::kOrdinary, labels[rng.UniformInt(3)]);
        doc.SetEdgeProbability(other, 0.3);
        ordinary.push_back(child);
        ordinary.push_back(other);
        ++i;  // Two ordinary nodes added.
        break;
      }
    }
  }
  doc.Finalize();
  return doc;
}

class RandomLocalDocTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomLocalDocTest, AllThreeEnginesAgree) {
  Rng rng(GetParam());
  PrXmlDocument doc = RandomLocalDoc(rng, 6);
  if (doc.events().size() > 14) GTEST_SKIP() << "too many events";

  TreePattern patterns[] = {
      TreePattern::LabelExists("L1"),
      TreePattern::AncestorDescendant("L0", "L2"),
      TreePattern::AncestorDescendant("L1", "L1")};
  for (const TreePattern& pattern : patterns) {
    double by_worlds = ProbabilityByEnumeration(
        doc.events(), [&](const Valuation& v) {
          return pattern.Matches(doc.World(v));
        });
    GateId lineage = PatternLineage(pattern, doc);
    double by_lineage =
        ExhaustiveProbability(doc.circuit(), lineage, doc.events());
    double by_mp =
        JunctionTreeProbability(doc.circuit(), lineage, doc.events());
    double by_fast = LocalPatternProbability(pattern, doc);
    EXPECT_NEAR(by_lineage, by_worlds, 1e-9);
    EXPECT_NEAR(by_mp, by_worlds, 1e-9);
    EXPECT_NEAR(by_fast, by_worlds, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLocalDocTest, ::testing::Range(0, 15));

// Documents with cie events: lineage still matches enumeration.
class RandomCieDocTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomCieDocTest, LineageMatchesEnumeration) {
  Rng rng(GetParam() + 5000);
  PrXmlDocument doc;
  EventId e0 = doc.events().Register("g0", 0.3 + 0.4 * rng.UniformDouble());
  EventId e1 = doc.events().Register("g1", 0.3 + 0.4 * rng.UniformDouble());
  PNodeId root = doc.AddRoot("doc");
  // Two far-apart subtrees correlated by shared events.
  for (int i = 0; i < 2; ++i) {
    PNodeId mid =
        doc.AddChild(root, PNodeKind::kOrdinary, "mid" + std::to_string(i));
    PNodeId cie = doc.AddChild(mid, PNodeKind::kCie, "");
    PNodeId leaf = doc.AddChild(cie, PNodeKind::kOrdinary, "leaf");
    bool positive = rng.Bernoulli(0.5);
    doc.SetEdgeLiterals(leaf, {{e0, positive}, {e1, true}});
  }
  doc.Finalize();

  TreePattern pattern;
  PatternNodeId r = pattern.AddRoot("doc");
  pattern.AddChild(r, "leaf", PatternAxis::kDescendant);
  GateId lineage = PatternLineage(pattern, doc);
  double by_worlds = ProbabilityByEnumeration(
      doc.events(), [&](const Valuation& v) {
        return pattern.Matches(doc.World(v));
      });
  EXPECT_NEAR(ExhaustiveProbability(doc.circuit(), lineage, doc.events()),
              by_worlds, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCieDocTest, ::testing::Range(0, 10));

TEST(ScopeTest, SharedEventScopeGrowsWithReuse) {
  // One event reused on k cie edges under distinct subtrees: every
  // occurrence subtree is in scope; the connecting root region too.
  PrXmlDocument doc;
  EventId e = doc.events().Register("e", 0.5);
  PNodeId root = doc.AddRoot("doc");
  for (int i = 0; i < 3; ++i) {
    PNodeId cie = doc.AddChild(root, PNodeKind::kCie, "");
    PNodeId child =
        doc.AddChild(cie, PNodeKind::kOrdinary, "c" + std::to_string(i));
    doc.SetEdgeLiterals(child, {{e, true}});
  }
  doc.Finalize();
  auto scopes = doc.NodeScopes();
  // Each cie child node is in scope of e.
  size_t in_scope = 0;
  for (PNodeId n = 0; n < doc.NumNodes(); ++n) {
    if (!scopes[n].empty()) ++in_scope;
  }
  EXPECT_GE(in_scope, 3u);
  EXPECT_EQ(doc.MaxScopeSize(), 1u);

  // Two distinct events reused across subtrees double the max scope.
  PrXmlDocument doc2;
  EventId a = doc2.events().Register("a", 0.5);
  EventId b = doc2.events().Register("b", 0.5);
  PNodeId root2 = doc2.AddRoot("doc");
  for (int i = 0; i < 2; ++i) {
    PNodeId cie = doc2.AddChild(root2, PNodeKind::kCie, "");
    PNodeId child =
        doc2.AddChild(cie, PNodeKind::kOrdinary, "c" + std::to_string(i));
    doc2.SetEdgeLiterals(child, {{a, true}, {b, i == 0}});
  }
  doc2.Finalize();
  EXPECT_EQ(doc2.MaxScopeSize(), 2u);
}

TEST(PrXmlDeathTest, MissingAnnotationsRejected) {
  PrXmlDocument doc;
  PNodeId root = doc.AddRoot("doc");
  PNodeId ind = doc.AddChild(root, PNodeKind::kInd, "");
  doc.AddChild(ind, PNodeKind::kOrdinary, "a");  // No probability set.
  EXPECT_DEATH(doc.Finalize(), "missing probability");
}

TEST(PrXmlDeathTest, MuxProbabilitiesMustSumToAtMostOne) {
  PrXmlDocument doc;
  PNodeId root = doc.AddRoot("doc");
  PNodeId mux = doc.AddChild(root, PNodeKind::kMux, "");
  PNodeId a = doc.AddChild(mux, PNodeKind::kOrdinary, "a");
  doc.SetEdgeProbability(a, 0.7);
  PNodeId b = doc.AddChild(mux, PNodeKind::kOrdinary, "b");
  doc.SetEdgeProbability(b, 0.7);
  EXPECT_DEATH(doc.Finalize(), "sum");
}


TEST(DetNodeTest, DetChildrenAlwaysPresent) {
  PrXmlDocument doc;
  PNodeId root = doc.AddRoot("doc");
  PNodeId det = doc.AddChild(root, PNodeKind::kDet, "");
  doc.AddChild(det, PNodeKind::kOrdinary, "a");
  doc.AddChild(det, PNodeKind::kOrdinary, "b");
  doc.Finalize();
  EXPECT_TRUE(doc.IsLocal());
  EXPECT_EQ(doc.events().size(), 0u);
  Valuation v(0);
  XmlTree world = doc.World(v);
  EXPECT_EQ(world.NumNodes(), 3u);  // det is transparent.
  EXPECT_NEAR(LocalPatternProbability(TreePattern::LabelExists("a"), doc),
              1.0, 1e-12);
}

TEST(NestedDistributionalTest, IndUnderMuxUnderInd) {
  // Distributional nodes nested three deep: guards multiply along the
  // chain; validated against enumeration.
  PrXmlDocument doc;
  PNodeId root = doc.AddRoot("doc");
  PNodeId ind1 = doc.AddChild(root, PNodeKind::kInd, "");
  PNodeId mux = doc.AddChild(ind1, PNodeKind::kMux, "");
  doc.SetEdgeProbability(mux, 0.8);
  PNodeId ind2 = doc.AddChild(mux, PNodeKind::kInd, "");
  doc.SetEdgeProbability(ind2, 0.5);
  PNodeId leaf = doc.AddChild(ind2, PNodeKind::kOrdinary, "leaf");
  doc.SetEdgeProbability(leaf, 0.5);
  doc.Finalize();

  double expected = 0.8 * 0.5 * 0.5;
  EXPECT_NEAR(
      LocalPatternProbability(TreePattern::LabelExists("leaf"), doc),
      expected, 1e-12);
  double by_worlds = ProbabilityByEnumeration(
      doc.events(), [&](const Valuation& v) {
        return TreePattern::LabelExists("leaf").Matches(doc.World(v));
      });
  EXPECT_NEAR(by_worlds, expected, 1e-12);
}

TEST(PrXmlDeathTest, EdgeAnnotationsOnWrongParents) {
  PrXmlDocument doc;
  EventId e = doc.events().Register("e", 0.5);
  PNodeId root = doc.AddRoot("doc");
  PNodeId plain = doc.AddChild(root, PNodeKind::kOrdinary, "a");
  EXPECT_DEATH(doc.SetEdgeProbability(plain, 0.5), "ind/mux");
  EXPECT_DEATH(doc.SetEdgeLiterals(plain, {{e, true}}), "cie");
  PNodeId ind = doc.AddChild(root, PNodeKind::kInd, "");
  PNodeId child = doc.AddChild(ind, PNodeKind::kOrdinary, "b");
  EXPECT_DEATH(doc.SetEdgeLiterals(child, {{e, true}}), "cie");
}

TEST(PrXmlDeathTest, FinalizeExactlyOnce) {
  PrXmlDocument doc;
  doc.AddRoot("doc");
  doc.Finalize();
  EXPECT_DEATH(doc.Finalize(), "CHECK failed");
  EXPECT_DEATH(doc.AddChild(0, PNodeKind::kOrdinary, "x"), "finalised");
}

TEST(PrXmlDeathTest, RootMustBeOrdinary) {
  PrXmlDocument doc;
  doc.AddRoot("doc");
  // (Roots are forced ordinary by AddRoot; a second root is impossible.)
  EXPECT_DEATH(doc.AddRoot("again"), "CHECK failed");
}

TEST(MuxSemanticTest, MarginalsMatchDeclaredProbabilities) {
  // Three-way mux with leftover "no child" mass: marginals are exactly
  // the declared probabilities even after chain renormalisation.
  PrXmlDocument doc;
  PNodeId root = doc.AddRoot("doc");
  PNodeId mux = doc.AddChild(root, PNodeKind::kMux, "");
  const double probs[3] = {0.2, 0.3, 0.4};
  const char* names[3] = {"x", "y", "z"};
  for (int i = 0; i < 3; ++i) {
    PNodeId c = doc.AddChild(mux, PNodeKind::kOrdinary, names[i]);
    doc.SetEdgeProbability(c, probs[i]);
  }
  doc.Finalize();
  double total = 0;
  for (int i = 0; i < 3; ++i) {
    double p = LocalPatternProbability(
        TreePattern::LabelExists(names[i]), doc);
    EXPECT_NEAR(p, probs[i], 1e-12) << names[i];
    total += p;
  }
  EXPECT_NEAR(total, 0.9, 1e-12);  // 0.1 mass on "no child".
  // Exclusivity: never two children at once.
  ForEachWorld(doc.events(), [&](const Valuation& v, double p) {
    (void)p;
    XmlTree world = doc.World(v);
    EXPECT_LE(world.NumNodes(), 2u);
  });
}

}  // namespace
}  // namespace tud
