// The compiled-first combinator surface: AutomatonExpr::Compile must
// (a) implement exactly the Boolean combination of its atoms' languages
// and (b) never round-trip through the std::map TreeAutomaton
// representation between closure steps — pinned down by the
// ToTreeAutomatonCalls counter.

#include <vector>

#include "automata/automaton_expr.h"
#include "automata/automaton_library.h"
#include "automata/binary_tree.h"
#include "automata/compiled_automaton.h"
#include "automata/provenance_run.h"
#include "automata/tree_automaton.h"
#include "events/event_registry.h"
#include "events/valuation.h"
#include "gtest/gtest.h"
#include "inference/exhaustive.h"
#include "util/rng.h"

namespace tud {
namespace {

TreeAutomaton RandomAutomaton(Rng& rng, uint32_t num_states,
                              Label alphabet) {
  TreeAutomaton a(num_states, alphabet);
  for (Label l = 0; l < alphabet; ++l) {
    for (State q = 0; q < num_states; ++q) {
      if (rng.Bernoulli(0.4)) a.AddLeafTransition(l, q);
    }
    for (State ql = 0; ql < num_states; ++ql) {
      for (State qr = 0; qr < num_states; ++qr) {
        uint64_t count = rng.UniformInt(3);
        for (uint64_t i = 0; i < count; ++i) {
          a.AddTransition(l, ql, qr,
                          static_cast<State>(rng.UniformInt(num_states)));
        }
      }
    }
  }
  a.SetAccepting(static_cast<State>(rng.UniformInt(num_states)));
  return a;
}

BinaryTree RandomTree(Rng& rng, uint32_t num_internal, Label alphabet) {
  BinaryTree t;
  std::vector<TreeNodeId> roots;
  for (uint32_t i = 0; i < num_internal + 1; ++i) {
    roots.push_back(t.AddLeaf(static_cast<Label>(rng.UniformInt(alphabet))));
  }
  while (roots.size() > 1) {
    size_t i = rng.UniformInt(roots.size());
    TreeNodeId a = roots[i];
    roots.erase(roots.begin() + i);
    size_t j = rng.UniformInt(roots.size());
    TreeNodeId b = roots[j];
    roots[j] =
        t.AddInternal(static_cast<Label>(rng.UniformInt(alphabet)), a, b);
  }
  return t;
}

class AutomatonExprTest : public ::testing::TestWithParam<int> {};

TEST_P(AutomatonExprTest, CompileMatchesLanguageCombination) {
  Rng rng(GetParam());
  const Label alphabet = 2 + static_cast<Label>(rng.UniformInt(2));
  TreeAutomaton a = RandomAutomaton(rng, 2 + rng.UniformInt(3), alphabet);
  TreeAutomaton b = RandomAutomaton(rng, 2 + rng.UniformInt(3), alphabet);
  TreeAutomaton c = RandomAutomaton(rng, 2 + rng.UniformInt(3), alphabet);

  AutomatonExpr expr = (AutomatonExpr::Atom(a) && !AutomatonExpr::Atom(b)) ||
                       AutomatonExpr::Atom(c);
  AutomatonExpr::CompileStats stats;
  CompiledAutomaton compiled = expr.Compile(&stats);
  EXPECT_EQ(stats.products, 2u);
  EXPECT_EQ(stats.complements, 1u);
  EXPECT_EQ(stats.result_states, compiled.num_states());

  for (int t = 0; t < 30; ++t) {
    BinaryTree tree =
        RandomTree(rng, static_cast<uint32_t>(rng.UniformInt(12)), alphabet);
    const bool expected =
        (a.Accepts(tree) && !b.Accepts(tree)) || c.Accepts(tree);
    EXPECT_EQ(compiled.Accepts(tree), expected) << "tree " << t;
  }
}

TEST_P(AutomatonExprTest, CompileNeverRoundTripsThroughTreeAutomaton) {
  Rng rng(GetParam() + 50);
  const Label alphabet = 2;
  // Atoms lower TreeAutomaton -> CompiledAutomaton up front (the edge);
  // from there the whole closure must stay compiled-to-compiled.
  AutomatonExpr expr =
      !(AutomatonExpr::Atom(RandomAutomaton(rng, 3, alphabet)) &&
        AutomatonExpr::Atom(RandomAutomaton(rng, 3, alphabet))) ||
      AutomatonExpr::Atom(RandomAutomaton(rng, 4, alphabet));
  const uint64_t before = CompiledAutomaton::ToTreeAutomatonCalls();
  CompiledAutomaton compiled = expr.Compile();
  EXPECT_EQ(CompiledAutomaton::ToTreeAutomatonCalls(), before)
      << "Compile() rebuilt a std::map TreeAutomaton mid-pipeline";
  EXPECT_GT(compiled.num_states(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutomatonExprTest, ::testing::Range(0, 10));

TEST(AutomatonExprTest, DoubleNegationFoldsToSameNode) {
  AutomatonExpr e = AutomatonExpr::Atom(MakeExistsLabel(2, 1));
  AutomatonExpr folded = !!e;
  EXPECT_EQ(folded.CacheKey(), e.CacheKey());
  AutomatonExpr::CompileStats stats;
  folded.Compile(&stats);
  EXPECT_EQ(stats.complements, 0u);
}

TEST(AutomatonExprTest, SharedSubexpressionKeepsOneIdentity) {
  AutomatonExpr atom = AutomatonExpr::Atom(MakeExistsLabel(2, 0));
  AutomatonExpr left = atom && AutomatonExpr::Atom(MakeExistsLabel(2, 1));
  AutomatonExpr right = atom || AutomatonExpr::Atom(MakeExistsLabel(2, 1));
  // Distinct combinations have distinct identities; copies share one.
  EXPECT_NE(left.CacheKey(), right.CacheKey());
  AutomatonExpr copy = left;
  EXPECT_EQ(copy.CacheKey(), left.CacheKey());
}

TEST(AutomatonExprTest, ProvenanceThroughCompiledExprMatchesLegacyRoute) {
  // The §2.2 Boolean-combination pipeline both ways: the expr route
  // (compiled end to end) and the legacy TreeAutomaton::Product /
  // Complement chain must produce the same lineage probability.
  EventRegistry registry;
  EventId e0 = registry.Register("e0", 0.35);
  EventId e1 = registry.Register("e1", 0.7);
  UncertainBinaryTree tree;
  GateId v0 = tree.circuit().AddVar(e0);
  GateId v1 = tree.circuit().AddVar(e1);
  TreeNodeId l0 = tree.AddLeaf({{1, v0}, {0, tree.circuit().AddNot(v0)}});
  TreeNodeId l1 = tree.AddLeaf({{2, v1}, {0, tree.circuit().AddNot(v1)}});
  tree.AddInternal({{0, tree.circuit().AddConst(true)}}, l0, l1);

  TreeAutomaton has_one = MakeExistsLabel(3, 1);
  TreeAutomaton has_two = MakeExistsLabel(3, 2);

  AutomatonExpr expr =
      AutomatonExpr::Atom(has_one) && !AutomatonExpr::Atom(has_two);
  GateId expr_lineage = ProvenanceRun(expr.Compile(), tree);

  TreeAutomaton legacy =
      TreeAutomaton::Product(has_one, has_two.Complement(), true);
  GateId legacy_lineage = ProvenanceRun(legacy, tree);

  EXPECT_NEAR(ExhaustiveProbability(tree.circuit(), expr_lineage, registry),
              ExhaustiveProbability(tree.circuit(), legacy_lineage, registry),
              1e-12);
}

}  // namespace
}  // namespace tud
