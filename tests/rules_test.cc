#include "gtest/gtest.h"
#include "inference/junction_tree.h"
#include "rules/chase.h"
#include "uncertain/pcc_instance.h"
#include "uncertain/worlds.h"

namespace tud {
namespace {

// Schema: Cityin(city, country), Livesin(person, city), Residesin(person,
// country), Knows(person, person).
Schema MakeKbSchema() {
  Schema schema;
  schema.AddRelation("CityIn", 2);
  schema.AddRelation("LivesIn", 2);
  schema.AddRelation("ResidesIn", 2);
  schema.AddRelation("Knows", 2);
  return schema;
}

// Probability that `fact` holds in the chased pc-instance.
double FactProbability(const CInstance& ci, const Fact& fact) {
  for (FactId f = 0; f < ci.NumFacts(); ++f) {
    if (ci.instance().fact(f) == fact) {
      BoolCircuit c;
      GateId g = c.AddFormula(ci.annotation(f));
      return JunctionTreeProbability(c, g, ci.events());
    }
  }
  return 0.0;
}

TEST(ChaseTest, HardRuleComputesClosure) {
  // Hard rule: LivesIn(p, c) & CityIn(c, k) -> ResidesIn(p, k).
  Dictionary dict;
  Value alice = dict.Intern("alice");
  Value paris = dict.Intern("paris");
  Value france = dict.Intern("france");
  CInstance base(MakeKbSchema());
  base.AddFact(1, {alice, paris}, BoolFormula::True());
  base.AddFact(0, {paris, france}, BoolFormula::True());

  Rule rule = MakeRule(
      "residence",
      {{1, {Term::V(0), Term::V(1)}}, {0, {Term::V(1), Term::V(2)}}},
      {{2, {Term::V(0), Term::V(2)}}}, 1.0);
  ChaseResult result = ProbabilisticChase(base, {rule}, dict);
  EXPECT_EQ(result.num_firings, 1u);
  EXPECT_TRUE(result.instance.instance().Contains(Fact{2, {alice, france}}));
  EXPECT_NEAR(FactProbability(result.instance, Fact{2, {alice, france}}),
              1.0, 1e-12);
}

TEST(ChaseTest, SoftRuleDerivesWithRuleProbability) {
  Dictionary dict;
  Value alice = dict.Intern("alice");
  Value paris = dict.Intern("paris");
  Value france = dict.Intern("france");
  CInstance base(MakeKbSchema());
  base.AddFact(1, {alice, paris}, BoolFormula::True());
  base.AddFact(0, {paris, france}, BoolFormula::True());

  Rule rule = MakeRule(
      "residence",
      {{1, {Term::V(0), Term::V(1)}}, {0, {Term::V(1), Term::V(2)}}},
      {{2, {Term::V(0), Term::V(2)}}}, 0.8);
  ChaseResult result = ProbabilisticChase(base, {rule}, dict);
  EXPECT_NEAR(FactProbability(result.instance, Fact{2, {alice, france}}),
              0.8, 1e-12);
}

TEST(ChaseTest, UncertainBodyPropagatesLineage) {
  // The body fact is itself uncertain: derived probability is
  // P(body) * P(rule fires).
  Dictionary dict;
  Value alice = dict.Intern("alice");
  Value paris = dict.Intern("paris");
  Value france = dict.Intern("france");
  CInstance base(MakeKbSchema());
  EventId extraction = base.events().Register("extraction_ok", 0.5);
  base.AddFact(1, {alice, paris}, BoolFormula::Var(extraction));
  base.AddFact(0, {paris, france}, BoolFormula::True());

  Rule rule = MakeRule(
      "residence",
      {{1, {Term::V(0), Term::V(1)}}, {0, {Term::V(1), Term::V(2)}}},
      {{2, {Term::V(0), Term::V(2)}}}, 0.8);
  ChaseResult result = ProbabilisticChase(base, {rule}, dict);
  EXPECT_NEAR(FactProbability(result.instance, Fact{2, {alice, france}}),
              0.4, 1e-12);
}

TEST(ChaseTest, MultipleDerivationsCombineAsNoisyOr) {
  // Alice lives in two cities of the same country: two independent
  // derivations, P = 1 - (1 - p)^2.
  Dictionary dict;
  Value alice = dict.Intern("alice");
  Value paris = dict.Intern("paris");
  Value lyon = dict.Intern("lyon");
  Value france = dict.Intern("france");
  CInstance base(MakeKbSchema());
  base.AddFact(1, {alice, paris}, BoolFormula::True());
  base.AddFact(1, {alice, lyon}, BoolFormula::True());
  base.AddFact(0, {paris, france}, BoolFormula::True());
  base.AddFact(0, {lyon, france}, BoolFormula::True());

  Rule rule = MakeRule(
      "residence",
      {{1, {Term::V(0), Term::V(1)}}, {0, {Term::V(1), Term::V(2)}}},
      {{2, {Term::V(0), Term::V(2)}}}, 0.8);
  ChaseResult result = ProbabilisticChase(base, {rule}, dict);
  EXPECT_EQ(result.num_firings, 2u);
  EXPECT_NEAR(FactProbability(result.instance, Fact{2, {alice, france}}),
              1.0 - 0.2 * 0.2, 1e-12);
}

TEST(ChaseTest, ExistentialRuleInventsNulls) {
  // Knows(p, q) -> ∃z Knows(q, z): advisor-style existential head.
  Dictionary dict;
  Value a = dict.Intern("a");
  Value b = dict.Intern("b");
  CInstance base(MakeKbSchema());
  base.AddFact(3, {a, b}, BoolFormula::True());

  Rule rule = MakeRule("invent", {{3, {Term::V(0), Term::V(1)}}},
                       {{3, {Term::V(1), Term::V(2)}}}, 1.0);
  ChaseOptions options;
  options.max_rounds = 2;
  ChaseResult result = ProbabilisticChase(base, {rule}, dict, options);
  // Round 1: Knows(b, _null0); round 2: Knows(_null0, _null1).
  EXPECT_GE(result.num_firings, 2u);
  EXPECT_TRUE(dict.Find("_null0").has_value());
  Value null0 = *dict.Find("_null0");
  EXPECT_TRUE(result.instance.instance().Contains(Fact{3, {b, null0}}));
}

TEST(ChaseTest, ChainedDerivationsMultiplyProbabilities) {
  // p -- soft rule --> q -- soft rule --> r with independent firings.
  Schema schema;
  schema.AddRelation("P", 1);
  schema.AddRelation("Q", 1);
  schema.AddRelation("R", 1);
  Dictionary dict;
  Value x = dict.Intern("x");
  CInstance base(schema);
  base.AddFact(0, {x}, BoolFormula::True());

  Rule r1 = MakeRule("pq", {{0, {Term::V(0)}}}, {{1, {Term::V(0)}}}, 0.5);
  Rule r2 = MakeRule("qr", {{1, {Term::V(0)}}}, {{2, {Term::V(0)}}}, 0.5);
  ChaseResult result = ProbabilisticChase(base, {r1, r2}, dict);
  EXPECT_NEAR(FactProbability(result.instance, Fact{1, {x}}), 0.5, 1e-12);
  EXPECT_NEAR(FactProbability(result.instance, Fact{2, {x}}), 0.25, 1e-12);
}

TEST(ChaseTest, RoundBoundTruncatesRecursion) {
  Schema schema;
  schema.AddRelation("E", 2);
  Dictionary dict;
  Value a = dict.Intern("a");
  CInstance base(schema);
  base.AddFact(0, {a, a}, BoolFormula::True());

  // E(x,y) -> ∃z E(y,z): infinite chase, truncated.
  Rule rule = MakeRule("step", {{0, {Term::V(0), Term::V(1)}}},
                       {{0, {Term::V(1), Term::V(2)}}}, 0.9);
  ChaseOptions options;
  options.max_rounds = 4;
  ChaseResult result = ProbabilisticChase(base, {rule}, dict, options);
  EXPECT_EQ(result.rounds_run, 4u);
  EXPECT_EQ(result.num_firings, 4u);  // One new frontier fact per round.
}

TEST(ChaseTest, FactCapStopsCleanly) {
  Schema schema;
  schema.AddRelation("E", 2);
  Dictionary dict;
  Value a = dict.Intern("a");
  CInstance base(schema);
  base.AddFact(0, {a, a}, BoolFormula::True());
  Rule rule = MakeRule("step", {{0, {Term::V(0), Term::V(1)}}},
                       {{0, {Term::V(1), Term::V(2)}}}, 0.9);
  ChaseOptions options;
  options.max_rounds = 100;
  options.max_facts = 5;
  ChaseResult result = ProbabilisticChase(base, {rule}, dict, options);
  EXPECT_TRUE(result.hit_fact_cap);
  EXPECT_LE(result.instance.NumFacts(), 6u);
}

TEST(ChaseTest, NoMatchingBodyNoFiring) {
  Dictionary dict;
  CInstance base(MakeKbSchema());
  Rule rule = MakeRule(
      "residence",
      {{1, {Term::V(0), Term::V(1)}}, {0, {Term::V(1), Term::V(2)}}},
      {{2, {Term::V(0), Term::V(2)}}}, 0.8);
  ChaseResult result = ProbabilisticChase(base, {rule}, dict);
  EXPECT_EQ(result.num_firings, 0u);
  EXPECT_EQ(result.instance.NumFacts(), 0u);
}

TEST(ChaseTest, WorldSemanticsOfChasedInstance) {
  // Cross-check the chased annotations against direct possible-world
  // reasoning: in each world, derived facts hold iff their derivation
  // events and body facts do.
  Dictionary dict;
  Value alice = dict.Intern("alice");
  Value paris = dict.Intern("paris");
  Value france = dict.Intern("france");
  CInstance base(MakeKbSchema());
  EventId src = base.events().Register("src", 0.5);
  base.AddFact(1, {alice, paris}, BoolFormula::Var(src));
  base.AddFact(0, {paris, france}, BoolFormula::True());
  Rule rule = MakeRule(
      "residence",
      {{1, {Term::V(0), Term::V(1)}}, {0, {Term::V(1), Term::V(2)}}},
      {{2, {Term::V(0), Term::V(2)}}}, 0.5);
  ChaseResult result = ProbabilisticChase(base, {rule}, dict);
  const CInstance& chased = result.instance;
  ASSERT_EQ(chased.events().size(), 2u);  // src + one firing event.
  ForEachWorld(chased.events(), [&](const Valuation& v, double p) {
    (void)p;
    Instance world = chased.World(v);
    bool body = v.value(0);
    bool fires = v.value(1);
    EXPECT_EQ(world.Contains(Fact{2, {alice, france}}), body && fires);
  });
}

}  // namespace
}  // namespace tud
