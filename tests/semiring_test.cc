#include <vector>

#include "circuits/bool_circuit.h"
#include "events/event_registry.h"
#include "gtest/gtest.h"
#include "semiring/provenance_eval.h"
#include "semiring/semiring.h"
#include "util/rng.h"

namespace tud {
namespace {

// ---------------------------------------------------------------------------
// Semiring axioms, checked on concrete values per semiring.
// ---------------------------------------------------------------------------

template <typename S>
void CheckAxioms(const std::vector<typename S::Value>& samples) {
  for (const auto& a : samples) {
    // Identity elements.
    EXPECT_EQ(S::Plus(a, S::Zero()), a);
    EXPECT_EQ(S::Times(a, S::One()), a);
    EXPECT_EQ(S::Times(a, S::Zero()), S::Zero());
    for (const auto& b : samples) {
      // Commutativity.
      EXPECT_EQ(S::Plus(a, b), S::Plus(b, a));
      EXPECT_EQ(S::Times(a, b), S::Times(b, a));
      for (const auto& c : samples) {
        // Associativity and distributivity.
        EXPECT_EQ(S::Plus(S::Plus(a, b), c), S::Plus(a, S::Plus(b, c)));
        EXPECT_EQ(S::Times(S::Times(a, b), c), S::Times(a, S::Times(b, c)));
        EXPECT_EQ(S::Times(a, S::Plus(b, c)),
                  S::Plus(S::Times(a, b), S::Times(a, c)));
      }
    }
  }
}

TEST(SemiringAxiomsTest, Boolean) {
  CheckAxioms<BoolSemiring>({false, true});
}

TEST(SemiringAxiomsTest, Counting) {
  CheckAxioms<CountingSemiring>({0, 1, 2, 3, 7});
}

TEST(SemiringAxiomsTest, Tropical) {
  CheckAxioms<TropicalSemiring>(
      {TropicalSemiring::Zero(), 0.0, 1.0, 2.5, 10.0});
}

TEST(SemiringAxiomsTest, MaxTimes) {
  CheckAxioms<MaxTimesSemiring>({0.0, 0.25, 0.5, 1.0});
}

TEST(SemiringAxiomsTest, Why) {
  WhySemiring::Value x = {{0}};
  WhySemiring::Value y = {{1}};
  WhySemiring::Value xy = {{0, 1}};
  WhySemiring::Value mixed = {{0}, {1, 2}};
  CheckAxioms<WhySemiring>(
      {WhySemiring::Zero(), WhySemiring::One(), x, y, xy, mixed});
}

TEST(SemiringAxiomsTest, Poly) {
  PolySemiring::Value x = {{{0}, 1}};
  PolySemiring::Value y = {{{1}, 2}};
  PolySemiring::Value c = {{{}, 3}};
  CheckAxioms<PolySemiring>(
      {PolySemiring::Zero(), PolySemiring::One(), x, y, c});
}

// Absorption (a + ab = a) holds for the absorptive semirings — this is
// the property §2.2 needs for provenance circuits — and fails for
// counting, which is why counting provenance is NOT claimed.
TEST(SemiringAbsorptionTest, AbsorptiveSemirings) {
  EXPECT_EQ(BoolSemiring::Plus(true, BoolSemiring::Times(true, false)), true);
  EXPECT_EQ(TropicalSemiring::Plus(2.0, TropicalSemiring::Times(2.0, 3.0)),
            2.0);
  EXPECT_EQ(MaxTimesSemiring::Plus(0.5, MaxTimesSemiring::Times(0.5, 0.5)),
            0.5);
  WhySemiring::Value a = {{0}};
  WhySemiring::Value b = {{1}};
  EXPECT_EQ(WhySemiring::Plus(a, WhySemiring::Times(a, b)), a);
}

TEST(SemiringAbsorptionTest, CountingIsNotAbsorptive) {
  CountingSemiring::Value a = 2, b = 3;
  EXPECT_NE(CountingSemiring::Plus(a, CountingSemiring::Times(a, b)), a);
}

TEST(WhySemiringTest, AbsorbRemovesSupersets) {
  WhySemiring::Value v = {{0}, {0, 1}, {2, 3}, {1, 2, 3}};
  WhySemiring::Value expected = {{0}, {2, 3}};
  EXPECT_EQ(WhySemiring::Absorb(v), expected);
}

TEST(WhySemiringTest, ToString) {
  EventRegistry registry;
  registry.Register("x");
  registry.Register("y");
  WhySemiring::Value v = {{0, 1}};
  EXPECT_EQ(WhySemiring::ToString(v, registry), "{{x,y}}");
}

TEST(PolySemiringTest, MultiplicationIsMultilinear) {
  PolySemiring::Value x = {{{0}, 1}};
  // x * x = x (idempotent variables).
  EXPECT_EQ(PolySemiring::Times(x, x), x);
}

TEST(PolySemiringTest, EvaluateBool) {
  // p = x0*x1 + x2.
  PolySemiring::Value p = {{{0, 1}, 1}, {{2}, 1}};
  EXPECT_TRUE(PolySemiring::EvaluateBool(p, {true, true, false}));
  EXPECT_TRUE(PolySemiring::EvaluateBool(p, {false, false, true}));
  EXPECT_FALSE(PolySemiring::EvaluateBool(p, {true, false, false}));
}

TEST(PolySemiringTest, ToString) {
  EventRegistry registry;
  registry.Register("x");
  registry.Register("y");
  PolySemiring::Value p = {{{0, 1}, 2}, {{}, 1}};
  EXPECT_EQ(PolySemiring::ToString(p, registry), "1 + 2*x*y");
}

// ---------------------------------------------------------------------------
// Monotone circuit evaluation.
// ---------------------------------------------------------------------------

class ProvenanceEvalTest : public ::testing::Test {
 protected:
  // Builds lineage (x0 & x1) | x2.
  ProvenanceEvalTest() {
    GateId a = circuit_.AddVar(0);
    GateId b = circuit_.AddVar(1);
    GateId c = circuit_.AddVar(2);
    root_ = circuit_.AddOr(circuit_.AddAnd(a, b), c);
  }

  BoolCircuit circuit_;
  GateId root_;
};

TEST_F(ProvenanceEvalTest, BooleanSemiringMatchesEvaluation) {
  for (uint64_t mask = 0; mask < 8; ++mask) {
    bool expected = circuit_.Evaluate(root_, Valuation::FromMask(mask, 3));
    bool got = EvalMonotoneCircuit<BoolSemiring>(
        circuit_, root_, [&](EventId e) { return (mask >> e) & 1; });
    EXPECT_EQ(got, expected) << mask;
  }
}

TEST_F(ProvenanceEvalTest, WhyProvenanceListsMinimalWitnesses) {
  auto why = EvalMonotoneCircuit<WhySemiring>(
      circuit_, root_,
      [](EventId e) { return WhySemiring::Value{{e}}; });
  WhySemiring::Value expected = {{0, 1}, {2}};
  EXPECT_EQ(why, expected);
}

TEST_F(ProvenanceEvalTest, PolyProvenance) {
  auto poly = EvalMonotoneCircuit<PolySemiring>(
      circuit_, root_,
      [](EventId e) { return PolySemiring::Value{{{e}, 1}}; });
  PolySemiring::Value expected = {{{0, 1}, 1}, {{2}, 1}};
  EXPECT_EQ(poly, expected);
}

TEST_F(ProvenanceEvalTest, TropicalComputesCheapestDerivation) {
  // Cost of x0 = 5, x1 = 3, x2 = 10: min((5+3), 10) = 8.
  double cost = EvalMonotoneCircuit<TropicalSemiring>(
      circuit_, root_, [](EventId e) {
        return e == 0 ? 5.0 : (e == 1 ? 3.0 : 10.0);
      });
  EXPECT_DOUBLE_EQ(cost, 8.0);
}

TEST_F(ProvenanceEvalTest, MaxTimesComputesBestDerivation) {
  double best = EvalMonotoneCircuit<MaxTimesSemiring>(
      circuit_, root_, [](EventId e) {
        return e == 0 ? 0.9 : (e == 1 ? 0.8 : 0.5);
      });
  EXPECT_DOUBLE_EQ(best, 0.72);  // max(0.9*0.8, 0.5).
}

TEST_F(ProvenanceEvalTest, RejectsNonMonotoneCircuits) {
  GateId neg = circuit_.AddNot(circuit_.AddVar(0));
  EXPECT_DEATH(EvalMonotoneCircuit<BoolSemiring>(
                   circuit_, neg, [](EventId) { return true; }),
               "monotone");
}

// Property: Why-provenance witnesses are exactly the minimal sets whose
// activation satisfies the circuit.
class WhyWitnessTest : public ::testing::TestWithParam<int> {};

TEST_P(WhyWitnessTest, WitnessesAreSatisfyingAndMinimal) {
  Rng rng(GetParam());
  BoolCircuit circuit;
  std::vector<GateId> pool;
  const uint32_t kEvents = 4;
  for (EventId e = 0; e < kEvents; ++e) pool.push_back(circuit.AddVar(e));
  for (int i = 0; i < 12; ++i) {
    GateId a = pool[rng.UniformInt(pool.size())];
    GateId b = pool[rng.UniformInt(pool.size())];
    pool.push_back(rng.Bernoulli(0.5) ? circuit.AddAnd(a, b)
                                      : circuit.AddOr(a, b));
  }
  GateId root = pool.back();
  auto why = EvalMonotoneCircuit<WhySemiring>(
      circuit, root, [](EventId e) { return WhySemiring::Value{{e}}; });
  for (const auto& witness : why) {
    uint64_t mask = 0;
    for (EventId e : witness) mask |= (1ULL << e);
    // The witness satisfies the circuit.
    EXPECT_TRUE(circuit.Evaluate(root, Valuation::FromMask(mask, kEvents)));
    // Every proper subset obtained by dropping one event fails or is a
    // different witness; minimality means dropping any event breaks it.
    for (EventId e : witness) {
      uint64_t sub = mask & ~(1ULL << e);
      EXPECT_FALSE(
          circuit.Evaluate(root, Valuation::FromMask(sub, kEvents)))
          << "witness not minimal";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WhyWitnessTest, ::testing::Range(0, 15));

}  // namespace
}  // namespace tud
