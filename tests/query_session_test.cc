// QuerySession: N queries against one instance must share one tree
// encoding and still agree, query by query, with the fresh-derivation
// path (ComputeCqLineage / ComputeReachabilityLineage + message
// passing). TreeQuerySession: the automaton route through the session
// must match the direct provenance-run pipeline, world by world.

#include <optional>
#include <string>
#include <vector>

#include "automata/automaton_library.h"
#include "automata/provenance_run.h"
#include "events/valuation.h"
#include "gtest/gtest.h"
#include "inference/exhaustive.h"
#include "inference/junction_tree.h"
#include "queries/lineage.h"
#include "queries/query_session.h"
#include "queries/reachability.h"
#include "uncertain/c_instance.h"
#include "uncertain/tid_instance.h"
#include "util/rng.h"

namespace tud {
namespace {

Schema RstSchema(RelationId* r, RelationId* s, RelationId* t) {
  Schema schema;
  *r = schema.AddRelation("R", 1);
  *s = schema.AddRelation("S", 2);
  *t = schema.AddRelation("T", 1);
  return schema;
}

TidInstance SmallRstTid(Rng& rng, RelationId r, RelationId s, RelationId t,
                        const Schema& schema, uint32_t chain) {
  TidInstance tid(schema);
  for (uint32_t i = 0; i < chain; ++i) {
    tid.AddFact(r, {i}, 0.2 + 0.6 * rng.UniformDouble());
    tid.AddFact(s, {i, i + 1}, 0.2 + 0.6 * rng.UniformDouble());
    tid.AddFact(t, {i + 1}, 0.2 + 0.6 * rng.UniformDouble());
  }
  return tid;
}

TEST(QuerySessionTest, CqQueryMatchesFreshDerivation) {
  RelationId r, s, t;
  Schema schema = RstSchema(&r, &s, &t);
  Rng rng(5);
  TidInstance tid = SmallRstTid(rng, r, s, t, schema, 5);
  CInstance pc = tid.ToPcInstance();
  ConjunctiveQuery q = ConjunctiveQuery::RstPath(r, s, t);

  // Fresh path: per-query decomposition.
  PccInstance fresh = PccInstance::FromCInstance(pc);
  GateId fresh_lineage = ComputeCqLineage(q, fresh);
  double expected =
      JunctionTreeProbability(fresh.circuit(), fresh_lineage, fresh.events());

  QuerySession session = QuerySession::FromCInstance(pc);
  EngineResult result = session.Query(q);
  EXPECT_NEAR(result.value, expected, 1e-9);
  EXPECT_EQ(result.error_bound, 0.0);
}

TEST(QuerySessionTest, ManyQueriesShareOneDecomposition) {
  Schema schema;
  RelationId e = schema.AddRelation("E", 2);
  Rng rng(11);
  TidInstance tid(schema);
  const uint32_t n = 8;
  for (uint32_t i = 0; i + 1 < n; ++i) {
    tid.AddFact(e, {i, i + 1}, 0.3 + 0.5 * rng.UniformDouble());
  }
  CInstance pc = tid.ToPcInstance();

  QuerySession session = QuerySession::FromCInstance(pc);
  const DecomposedInstance* dec = &session.Decomposition();
  for (uint32_t target = 1; target < n; ++target) {
    // Fresh path for this query alone.
    PccInstance fresh = PccInstance::FromCInstance(pc);
    GateId fresh_lineage = ComputeReachabilityLineage(fresh, e, 0, target);
    double expected = JunctionTreeProbability(fresh.circuit(), fresh_lineage,
                                              fresh.events());

    LineageStats stats;
    GateId lineage = session.ReachabilityLineage(e, 0, target, &stats);
    EngineResult result = session.Probability(lineage);
    EXPECT_NEAR(result.value, expected, 1e-9) << "target " << target;
    EXPECT_GE(stats.decomposition_width, 0);
    // The decomposition is derived once and reused verbatim.
    EXPECT_EQ(&session.Decomposition(), dec);
  }
}

TEST(QuerySessionTest, ReachabilityLineageValidPerWorld) {
  Schema schema;
  RelationId e = schema.AddRelation("E", 2);
  TidInstance tid(schema);
  tid.AddFact(e, {0, 1}, 0.5);
  tid.AddFact(e, {1, 2}, 0.5);
  tid.AddFact(e, {0, 3}, 0.5);
  tid.AddFact(e, {3, 2}, 0.5);
  CInstance pc = tid.ToPcInstance();

  QuerySession session = QuerySession::FromCInstance(pc);
  GateId lineage = session.ReachabilityLineage(e, 0, 2);
  const size_t num_events = session.pcc().events().size();
  for (uint64_t mask = 0; mask < (1ULL << num_events); ++mask) {
    Valuation v = Valuation::FromMask(mask, num_events);
    Instance world = session.pcc().World(v);
    EXPECT_EQ(session.pcc().circuit().Evaluate(lineage, v),
              EvaluateReachability(world, e, 0, 2))
        << "mask " << mask;
  }
}

TEST(QuerySessionTest, EvidenceConditionsTheQuery) {
  RelationId r, s, t;
  Schema schema = RstSchema(&r, &s, &t);
  Rng rng(21);
  TidInstance tid = SmallRstTid(rng, r, s, t, schema, 3);
  CInstance pc = tid.ToPcInstance();
  ConjunctiveQuery q = ConjunctiveQuery::RstPath(r, s, t);

  QuerySession session = QuerySession::FromCInstance(pc);
  GateId lineage = session.CqLineage(q);
  const Evidence evidence = {{0, true}};
  double expected = JunctionTreeProbabilityWithEvidence(
      session.pcc().circuit(), lineage, session.pcc().events(), evidence);
  EXPECT_NEAR(session.Probability(lineage, evidence).value, expected, 1e-9);
}

TEST(TreeQuerySessionTest, MatchesDirectPipelineWorldByWorld) {
  EventRegistry registry;
  EventId e0 = registry.Register("e0", 0.4);
  EventId e1 = registry.Register("e1", 0.6);
  UncertainBinaryTree tree;
  GateId v0 = tree.circuit().AddVar(e0);
  GateId v1 = tree.circuit().AddVar(e1);
  TreeNodeId l0 = tree.AddLeaf({{1, v0}, {0, tree.circuit().AddNot(v0)}});
  TreeNodeId l1 = tree.AddLeaf({{2, v1}, {0, tree.circuit().AddNot(v1)}});
  tree.AddInternal({{0, tree.circuit().AddConst(true)}}, l0, l1);

  AutomatonExpr query = AutomatonExpr::Atom(MakeExistsLabel(3, 1)) &&
                        !AutomatonExpr::Atom(MakeExistsLabel(3, 2));
  CompiledAutomaton compiled = query.Compile();

  TreeQuerySession session(tree, registry);
  GateId lineage = session.Lineage(query);
  for (uint64_t mask = 0; mask < 4; ++mask) {
    Valuation v = Valuation::FromMask(mask, 2);
    BinaryTree world = session.tree().World(v);
    EXPECT_EQ(session.tree().circuit().Evaluate(lineage, v),
              compiled.Accepts(world))
        << "mask " << mask;
  }

  // P(has `1` and no `2`) = p(e0) * (1 - p(e1)), by independence.
  EngineResult result = session.Probability(query);
  EXPECT_NEAR(result.value, 0.4 * (1 - 0.6), 1e-9);
}

TEST(TreeQuerySessionTest, RepeatedQueriesReuseCompilationAndGates) {
  EventRegistry registry;
  EventId e0 = registry.Register("e0", 0.5);
  UncertainBinaryTree tree;
  GateId v0 = tree.circuit().AddVar(e0);
  TreeNodeId l0 = tree.AddLeaf({{1, v0}, {0, tree.circuit().AddNot(v0)}});
  TreeNodeId l1 = tree.AddLeaf({{0, tree.circuit().AddConst(true)}});
  tree.AddInternal({{0, tree.circuit().AddConst(true)}}, l0, l1);

  TreeQuerySession session(std::move(tree), registry);
  AutomatonExpr query = AutomatonExpr::Atom(MakeExistsLabel(2, 1));
  double first = session.Probability(query).value;
  const CompiledAutomaton* compiled_once = &session.Compiled(query);
  const size_t gates_after_first = session.tree().circuit().NumGates();

  // Same expression again: same compiled automaton object, and the
  // provenance run re-emits structurally identical gates, which the
  // circuit's structural hash dedups — no growth.
  double second = session.Probability(query).value;
  EXPECT_EQ(&session.Compiled(query), compiled_once);
  EXPECT_EQ(session.tree().circuit().NumGates(), gates_after_first);
  EXPECT_NEAR(first, second, 0.0);
  EXPECT_NEAR(first, 0.5, 1e-9);
}

}  // namespace
}  // namespace tud
