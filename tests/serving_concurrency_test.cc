// The serving layer's contracts, exercised under real concurrency (run
// these under TSan — the CI thread-sanitizer job does):
//  - TaskScheduler runs every task exactly once, Spawn fan-out and
//    stealing included;
//  - ConcurrentPlanCache builds each root exactly once under a
//    thundering herd;
//  - a shared JunctionTreeEngine and a ServingSession return results
//    *bit-identical* to sequential evaluation from 8 threads, for both
//    the direct and the coalescing intake, with and without evidence;
//  - the shared_pass batched route agrees to rounding;
//  - an IncrementalSession writer publishing epochs races 7 reader
//    threads without a reader ever observing a torn or stale-mixed
//    snapshot (every answer matches some published epoch exactly).

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "incremental/epoch.h"
#include "incremental/incremental_session.h"
#include "inference/junction_tree.h"
#include "queries/query_session.h"
#include "serving/scheduler.h"
#include "serving/server.h"
#include "uncertain/c_instance.h"
#include "uncertain/tid_instance.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace tud {
namespace {

using serving::ServingOptions;
using serving::ServingSession;
using serving::TaskScheduler;

// One prepared instance + a set of distinct reachability lineages, plus
// the sequential ground truth for each (computed with a fresh engine,
// exactly what a single-threaded QuerySession::Probability would do).
struct Prepared {
  QuerySession session;
  std::vector<GateId> lineages;
  std::vector<Evidence> evidences;        // Parallel to `queries`.
  std::vector<uint32_t> queries;          // Lineage index per query.
  std::vector<double> expected;           // Ground truth per query.
};

Prepared PrepareLadder(uint32_t rungs, uint32_t num_lineages,
                       size_t num_queries) {
  Rng rng(11);
  TidInstance tid = workloads::LadderTid(rng, rungs);
  Prepared p{QuerySession::FromCInstance(tid.ToPcInstance()), {}, {}, {}, {}};

  // Distinct (source, target) pairs along the ladder's rails.
  for (uint32_t i = 0; i < num_lineages; ++i) {
    uint32_t source = i % 3;
    uint32_t target = 2 * rungs - 2 - (i % 5);
    if (source == target) target = 2 * rungs - 2;
    p.lineages.push_back(p.session.ReachabilityLineage(0, source, target));
  }

  // A skewed query mix over those lineages; every third query pins one
  // event as evidence.
  const EventRegistry& events = p.session.pcc().events();
  std::vector<uint32_t> mix =
      workloads::ZipfianQueryMix(num_lineages, num_queries, 0.99, 77);
  JunctionTreeEngine sequential(/*seed_topological=*/false,
                                /*cache_plans=*/true);
  for (size_t q = 0; q < mix.size(); ++q) {
    Evidence evidence;
    if (q % 3 == 1 && events.size() > 0)
      evidence.push_back({static_cast<EventId>(q % events.size()), q % 2 == 0});
    p.queries.push_back(mix[q]);
    p.evidences.push_back(evidence);
    p.expected.push_back(sequential
                             .Estimate(p.session.pcc().circuit(),
                                       p.lineages[mix[q]],
                                       p.session.pcc().events(), evidence)
                             .value);
  }
  return p;
}

// Distinct lineage roots a prepared query mix actually touches (what a
// build-exactly-once cache must end up with).
size_t DistinctRoots(const Prepared& p) {
  std::vector<bool> seen(p.lineages.size(), false);
  for (uint32_t q : p.queries) seen[q] = true;
  size_t count = 0;
  for (bool s : seen) count += s ? 1 : 0;
  return count;
}

TEST(TaskSchedulerTest, RunsEveryTaskExactlyOnce) {
  TaskScheduler::Options options;
  options.num_threads = 4;
  TaskScheduler scheduler(options);
  std::atomic<uint64_t> sum{0};
  constexpr uint64_t kTasks = 2000;
  for (uint64_t i = 0; i < kTasks; ++i)
    ASSERT_TRUE(scheduler.Submit([&sum, i] {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    }));
  scheduler.Drain();
  EXPECT_EQ(sum.load(), kTasks * (kTasks + 1) / 2);
  TaskScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, kTasks);
  EXPECT_EQ(stats.executed, kTasks);
}

TEST(TaskSchedulerTest, SpawnFanOutFromInsideTasks) {
  TaskScheduler::Options options;
  options.num_threads = 4;
  TaskScheduler scheduler(options);
  std::atomic<uint64_t> leaves{0};
  constexpr uint64_t kRoots = 16, kChildren = 64;
  for (uint64_t i = 0; i < kRoots; ++i) {
    scheduler.Submit([&] {
      // Inside a worker: Spawn pushes to the worker's own deque, and a
      // worker thread must see its scratch arena.
      EXPECT_NE(TaskScheduler::CurrentScratch(), nullptr);
      for (uint64_t c = 0; c < kChildren; ++c)
        scheduler.Spawn(
            [&leaves] { leaves.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  scheduler.Drain();
  EXPECT_EQ(leaves.load(), kRoots * kChildren);
  EXPECT_EQ(scheduler.stats().executed, kRoots + kRoots * kChildren);
  // Off-worker there is no scratch arena.
  EXPECT_EQ(TaskScheduler::CurrentScratch(), nullptr);
}

TEST(TaskSchedulerTest, BackpressureBoundHolds) {
  TaskScheduler::Options options;
  options.num_threads = 2;
  options.queue_capacity = 8;  // Tiny intake: Submit must block, not drop.
  TaskScheduler scheduler(options);
  std::atomic<uint64_t> ran{0};
  for (int i = 0; i < 500; ++i)
    ASSERT_TRUE(scheduler.Submit(
        [&ran] { ran.fetch_add(1, std::memory_order_relaxed); }));
  scheduler.Drain();
  EXPECT_EQ(ran.load(), 500u);
}

TEST(ConcurrentPlanCacheTest, ThunderingHerdBuildsOnce) {
  Rng rng(3);
  TidInstance tid = workloads::LadderTid(rng, 12);
  QuerySession session = QuerySession::FromCInstance(tid.ToPcInstance());
  GateId lineage = session.ReachabilityLineage(0, 0, 22);

  ConcurrentPlanCache cache;
  const BoolCircuit& circuit = session.pcc().circuit();
  constexpr unsigned kThreads = 8;
  std::vector<const JunctionTreePlan*> got(kThreads, nullptr);
  {
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t)
      threads.emplace_back([&, t] {
        // Every thread races GetOrBuild on the same cold root.
        got[t] = cache.GetOrBuild(circuit, lineage);
      });
    for (auto& thread : threads) thread.join();
  }
  EXPECT_EQ(cache.builds(), 1u);  // The pin: one Build across the herd.
  EXPECT_EQ(cache.size(), 1u);
  for (unsigned t = 1; t < kThreads; ++t) EXPECT_EQ(got[t], got[0]);

  // Distinct roots build independently, still exactly once each.
  std::vector<GateId> roots;
  for (uint32_t i = 1; i <= 4; ++i)
    roots.push_back(session.ReachabilityLineage(0, i % 2, 22 - i));
  {
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < 16; ++t)
      threads.emplace_back([&, t] {
        const JunctionTreePlan* plan =
            cache.GetOrBuild(circuit, roots[t % roots.size()]);
        EXPECT_NE(plan, nullptr);
      });
    for (auto& thread : threads) thread.join();
  }
  EXPECT_EQ(cache.builds(), 1u + roots.size());
}

TEST(ServingConcurrencyTest, SharedEngineBitIdenticalFromEightThreads) {
  Prepared p = PrepareLadder(/*rungs=*/14, /*num_lineages=*/10,
                             /*num_queries=*/400);
  JunctionTreeEngine engine(/*seed_topological=*/false, /*cache_plans=*/true);
  const BoolCircuit& circuit = p.session.pcc().circuit();
  const EventRegistry& events = p.session.pcc().events();

  constexpr unsigned kThreads = 8;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      // Interleaved slices: every thread touches hot and cold roots.
      for (size_t q = t; q < p.queries.size(); q += kThreads) {
        EngineResult r = engine.Estimate(circuit, p.lineages[p.queries[q]],
                                         events, p.evidences[q]);
        EXPECT_EQ(r.value, p.expected[q]) << "query " << q;
      }
    });
  for (auto& thread : threads) thread.join();
  ASSERT_NE(engine.plan_cache(), nullptr);
  EXPECT_EQ(engine.plan_cache()->builds(), DistinctRoots(p));
}

TEST(ServingConcurrencyTest, ConcurrentEstimateBatchMatchesSequential) {
  Prepared p = PrepareLadder(14, 8, 0);
  JunctionTreeEngine engine(false, /*cache_plans=*/true);
  const BoolCircuit& circuit = p.session.pcc().circuit();
  const EventRegistry& events = p.session.pcc().events();
  std::vector<EngineResult> sequential =
      engine.EstimateBatch(circuit, p.lineages, events);

  constexpr unsigned kThreads = 6;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int round = 0; round < 5; ++round) {
        std::vector<EngineResult> results =
            engine.EstimateBatch(circuit, p.lineages, events);
        ASSERT_EQ(results.size(), sequential.size());
        for (size_t i = 0; i < results.size(); ++i)
          EXPECT_EQ(results[i].value, sequential[i].value);
      }
    });
  for (auto& thread : threads) thread.join();
}

// The tentpole end-to-end check: a ServingSession fed a zipfian mix
// from 8 submitter threads returns, for every single query, the exact
// bits sequential evaluation produces.
TEST(ServingConcurrencyTest, ServingSessionBitIdenticalUnderLoad) {
  Prepared p = PrepareLadder(14, 10, 480);
  for (bool coalesce : {false, true}) {
    ServingOptions options;
    options.num_threads = 4;
    options.coalesce = coalesce;
    ServingSession serving(p.session.pcc().circuit(), p.session.pcc().events(),
                           options);

    std::vector<std::future<EngineResult>> futures(p.queries.size());
    constexpr unsigned kSubmitters = 8;
    std::vector<std::thread> submitters;
    for (unsigned t = 0; t < kSubmitters; ++t)
      submitters.emplace_back([&, t] {
        for (size_t q = t; q < p.queries.size(); q += kSubmitters)
          futures[q] =
              serving.Submit(p.lineages[p.queries[q]], p.evidences[q]);
      });
    for (auto& thread : submitters) thread.join();
    serving.Drain();

    for (size_t q = 0; q < futures.size(); ++q) {
      EngineResult r = futures[q].get();
      EXPECT_EQ(r.value, p.expected[q])
          << (coalesce ? "coalesced" : "direct") << " query " << q;
      EXPECT_STREQ(r.engine, "junction_tree");
    }
    // Build-once held end to end, and Evaluate (the synchronous path)
    // agrees too.
    EXPECT_EQ(serving.plan_cache().builds(), DistinctRoots(p));
    // Query 0's evidence is empty (the mix pins evidence on q % 3 == 1),
    // so the synchronous path must reproduce its exact bits too.
    EXPECT_EQ(serving.Evaluate(p.lineages[p.queries[0]]).value, p.expected[0]);
  }
}

TEST(ServingConcurrencyTest, PrewarmMakesServingBuildFree) {
  Prepared p = PrepareLadder(12, 6, 60);
  ServingOptions options;
  options.num_threads = 2;
  ServingSession serving(p.session.pcc().circuit(), p.session.pcc().events(),
                         options);
  for (GateId lineage : p.lineages) serving.Prewarm(lineage);
  EXPECT_EQ(serving.plan_cache().builds(), p.lineages.size());

  std::vector<std::future<EngineResult>> futures;
  for (size_t q = 0; q < p.queries.size(); ++q)
    futures.push_back(serving.Submit(p.lineages[p.queries[q]],
                                     p.evidences[q]));
  serving.Drain();
  for (size_t q = 0; q < futures.size(); ++q)
    EXPECT_EQ(futures[q].get().value, p.expected[q]);
  // Serving traffic hit only warm plans.
  EXPECT_EQ(serving.plan_cache().builds(), p.lineages.size());
}

// The shared-pass route answers a same-evidence group in one batched
// message pass: equal to sequential up to summation order.
TEST(ServingConcurrencyTest, SharedPassAgreesToRounding) {
  Prepared p = PrepareLadder(14, 8, 0);
  std::vector<double> expected;
  for (GateId lineage : p.lineages)
    expected.push_back(JunctionTreeProbability(
        p.session.pcc().circuit(), lineage, p.session.pcc().events()));

  ServingOptions options;
  options.num_threads = 2;
  options.coalesce = true;
  options.shared_pass = true;
  ServingSession serving(p.session.pcc().circuit(), p.session.pcc().events(),
                         options);
  for (int round = 0; round < 3; ++round) {
    std::vector<std::future<EngineResult>> futures;
    for (GateId lineage : p.lineages) futures.push_back(serving.Submit(lineage));
    serving.Drain();
    for (size_t i = 0; i < futures.size(); ++i)
      EXPECT_NEAR(futures[i].get().value, expected[i], 1e-9);
  }
}

// The coalescing intake honours queue_capacity too: with a tiny bound
// and a flood of external submissions, Submit blocks (never drops), the
// pending buffer stays bounded, and every future still resolves to the
// sequential bits.
TEST(ServingConcurrencyTest, CoalescingBackpressureBlocksNotDrops) {
  Prepared p = PrepareLadder(12, 6, 240);
  ServingOptions options;
  options.num_threads = 2;
  options.coalesce = true;
  options.queue_capacity = 4;  // Far below the submission count.
  options.max_coalesce = 2;
  ServingSession serving(p.session.pcc().circuit(), p.session.pcc().events(),
                         options);

  std::vector<std::future<EngineResult>> futures(p.queries.size());
  constexpr unsigned kSubmitters = 4;
  std::vector<std::thread> submitters;
  for (unsigned t = 0; t < kSubmitters; ++t)
    submitters.emplace_back([&, t] {
      for (size_t q = t; q < p.queries.size(); q += kSubmitters)
        futures[q] = serving.Submit(p.lineages[p.queries[q]], p.evidences[q]);
    });
  for (auto& thread : submitters) thread.join();
  serving.Drain();
  for (size_t q = 0; q < futures.size(); ++q)
    EXPECT_EQ(futures[q].get().value, p.expected[q]) << "query " << q;
}

// The epoch stress: one writer thread keeps updating probabilities and
// publishing epochs through an EpochManager while 7 reader threads
// serve queries off whatever epoch is current. Every reader answer must
// be bit-identical to the full evaluation the writer recorded for the
// epoch it read — a torn snapshot (plan from one epoch, registry from
// another) would miss every recorded value. Run under TSan in CI.
TEST(ServingConcurrencyTest, EpochPublicationStressEightThreads) {
  constexpr uint32_t kRungs = 12;
  constexpr uint64_t kEpochs = 30;
  Rng gen(91);
  TidInstance tid = workloads::LadderTid(gen, kRungs);
  QuerySession session = QuerySession::FromCInstance(tid.ToPcInstance());
  incremental::IncrementalSession inc(session);
  const incremental::QueryId q0 =
      inc.RegisterReachability(0, 0, 2 * kRungs - 2);
  const incremental::QueryId q1 = inc.RegisterReachability(0, 1, 2 * kRungs - 3);

  // expected[k][i]: the writer's own (single-threaded, bit-exact)
  // answer for query i at epoch k, written before epoch k is published;
  // the release-store inside Publish makes it visible to any reader
  // that acquires epoch k.
  incremental::EpochManager epochs;
  std::vector<std::array<double, 2>> expected(kEpochs + 1, {0.0, 0.0});
  std::atomic<uint64_t> last_published{0};
  auto publish = [&](uint64_t k) {
    expected[k][0] = inc.Probability(q0).value;
    expected[k][1] = inc.Probability(q1).value;
    // The frontier must advance BEFORE the snapshot becomes grabbable:
    // a reader that serves epoch k and then loads the frontier must see
    // a value >= k, or a perfectly correct answer looks unmatched.
    last_published.store(k, std::memory_order_release);
    ASSERT_EQ(inc.PublishSnapshot(epochs), k);
  };
  publish(1);  // Readers never see an empty manager.

  serving::ServingOptions options;
  options.num_threads = 2;
  serving::EpochedServingSession serving(epochs, options);

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  // 4 direct-manager readers: pin the exact epoch they grabbed.
  for (unsigned t = 0; t < 4; ++t)
    readers.emplace_back([&, t] {
      const size_t query = t % 2;
      while (!done.load(std::memory_order_acquire)) {
        std::shared_ptr<const incremental::SessionSnapshot> snap =
            epochs.Current();
        ASSERT_NE(snap, nullptr);
        EXPECT_EQ(snap->epoch, snap->epoch_check);  // Torn-publish canary.
        const GateId root = snap->query_roots[query];
        // PublishSnapshot prewarms every registered root.
        const JunctionTreePlan* plan = snap->plans->Lookup(root);
        ASSERT_NE(plan, nullptr);
        EXPECT_EQ(plan->Execute(*snap->registry), expected[snap->epoch][query])
            << "epoch " << snap->epoch;
      }
    });
  // 3 serving-session readers: the snapshot is grabbed inside the
  // worker, so the answer must match *some* already-published epoch.
  for (unsigned t = 0; t < 3; ++t)
    readers.emplace_back([&, t] {
      const size_t query = t % 2;
      while (!done.load(std::memory_order_acquire)) {
        const double value = t == 0
                                 ? serving.Evaluate(query).value
                                 : serving.Submit(query).get().value;
        const uint64_t frontier =
            last_published.load(std::memory_order_acquire);
        bool matched = false;
        for (uint64_t k = 1; k <= frontier && !matched; ++k)
          matched = value == expected[k][query];
        EXPECT_TRUE(matched) << "value " << value << " matches no epoch <= "
                             << frontier;
      }
    });

  // The writer: epoch k moves a few probabilities deterministically,
  // records the bit-exact answers, and publishes.
  for (uint64_t k = 2; k <= kEpochs; ++k) {
    const size_t num_events = session.pcc().events().size();
    inc.UpdateProbability(static_cast<EventId>(k % num_events),
                          0.05 + 0.9 * static_cast<double>(k) / kEpochs);
    inc.UpdateProbability(static_cast<EventId>((3 * k) % num_events),
                          0.95 - 0.9 * static_cast<double>(k) / kEpochs);
    publish(k);
  }
  done.store(true, std::memory_order_release);
  for (auto& thread : readers) thread.join();
  serving.Drain();

  // After the last publish, everyone agrees on the final epoch.
  std::shared_ptr<const incremental::SessionSnapshot> final_snap =
      epochs.Current();
  ASSERT_NE(final_snap, nullptr);
  EXPECT_EQ(final_snap->epoch, kEpochs);
  EXPECT_EQ(serving.Evaluate(0).value, expected[kEpochs][0]);
  EXPECT_EQ(serving.Evaluate(1).value, expected[kEpochs][1]);
  EXPECT_EQ(inc.stats().epochs_published, kEpochs);
}

}  // namespace
}  // namespace tud
