#include "gtest/gtest.h"
#include "relational/dictionary.h"
#include "relational/instance.h"
#include "relational/schema.h"

namespace tud {
namespace {

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  Value a = dict.Intern("alice");
  Value b = dict.Intern("bob");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("alice"), a);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.name(a), "alice");
  EXPECT_EQ(dict.Find("bob"), b);
  EXPECT_EQ(dict.Find("carol"), std::nullopt);
}

TEST(SchemaTest, RelationsAndArities) {
  Schema schema;
  RelationId r = schema.AddRelation("R", 1);
  RelationId s = schema.AddRelation("S", 2);
  EXPECT_EQ(schema.NumRelations(), 2u);
  EXPECT_EQ(schema.arity(r), 1u);
  EXPECT_EQ(schema.arity(s), 2u);
  EXPECT_EQ(schema.name(s), "S");
  EXPECT_EQ(schema.Find("R"), r);
  EXPECT_EQ(schema.Find("T"), std::nullopt);
}

TEST(SchemaDeathTest, RejectsDuplicateRelation) {
  Schema schema;
  schema.AddRelation("R", 1);
  EXPECT_DEATH(schema.AddRelation("R", 2), "duplicate");
}

class InstanceTest : public ::testing::Test {
 protected:
  InstanceTest() {
    r_ = schema_.AddRelation("R", 1);
    s_ = schema_.AddRelation("S", 2);
  }
  Schema schema_;
  RelationId r_, s_;
};

TEST_F(InstanceTest, AddAndQueryFacts) {
  Instance instance(schema_);
  FactId f0 = instance.AddFact(r_, {0});
  FactId f1 = instance.AddFact(s_, {0, 1});
  EXPECT_EQ(instance.NumFacts(), 2u);
  EXPECT_EQ(instance.fact(f0).relation, r_);
  EXPECT_EQ(instance.fact(f1).args, (std::vector<Value>{0, 1}));
  EXPECT_EQ(instance.DomainSize(), 2u);
  EXPECT_TRUE(instance.Contains(Fact{s_, {0, 1}}));
  EXPECT_FALSE(instance.Contains(Fact{s_, {1, 0}}));
}

TEST_F(InstanceTest, ArityMismatchDies) {
  Instance instance(schema_);
  EXPECT_DEATH(instance.AddFact(r_, {0, 1}), "arity mismatch");
}

TEST_F(InstanceTest, GaifmanEdgesAreCooccurrences) {
  Instance instance(schema_);
  instance.AddFact(s_, {0, 1});
  instance.AddFact(s_, {1, 2});
  instance.AddFact(s_, {0, 1});  // Duplicate fact: edge deduplicated.
  instance.AddFact(r_, {3});     // Unary: no edge.
  instance.AddFact(s_, {4, 4});  // Self-pair: no edge.
  auto edges = instance.GaifmanEdges();
  EXPECT_EQ(edges, (std::vector<std::pair<Value, Value>>{{0, 1}, {1, 2}}));
}

TEST_F(InstanceTest, ToStringUsesDictionary) {
  Dictionary dict;
  Value a = dict.Intern("a");
  Value b = dict.Intern("b");
  Instance instance(schema_);
  instance.AddFact(s_, {a, b});
  EXPECT_EQ(instance.ToString(dict), "S(a, b)\n");
}

TEST_F(InstanceTest, FactOrdering) {
  Fact f1{r_, {0}};
  Fact f2{r_, {1}};
  Fact f3{s_, {0, 0}};
  EXPECT_LT(f1, f2);
  EXPECT_LT(f2, f3);
  EXPECT_EQ(f1, (Fact{r_, {0}}));
}

}  // namespace
}  // namespace tud
