#include <algorithm>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/strings.h"

namespace tud {
namespace {

TEST(CheckTest, PassingConditionDoesNothing) {
  TUD_CHECK(true);
  TUD_CHECK_EQ(1, 1);
  TUD_CHECK_LT(1, 2);
  TUD_CHECK_GE(2, 2);
}

TEST(CheckDeathTest, FailingConditionAborts) {
  EXPECT_DEATH(TUD_CHECK(false) << "context", "CHECK failed");
  EXPECT_DEATH(TUD_CHECK_EQ(1, 2), "CHECK failed");
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(13), 13u);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformRangeIncludesEndpoints) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformRange(-2, 2));
  EXPECT_TRUE(seen.contains(-2));
  EXPECT_TRUE(seen.contains(2));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(9);
  int hits = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  double rate = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(13);
  std::vector<uint32_t> perm = rng.Permutation(50);
  std::sort(perm.begin(), perm.end());
  for (uint32_t i = 0; i < 50; ++i) EXPECT_EQ(perm[i], i);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> items = {1, 2, 3, 4, 5, 6};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(StringsTest, StrJoin) {
  EXPECT_EQ(StrJoin({}, ", "), "");
  EXPECT_EQ(StrJoin({"a"}, ", "), "a");
  EXPECT_EQ(StrJoin({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(StringsTest, StrSplit) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x  "), "x");
  EXPECT_EQ(StripWhitespace("\t\na b\r "), "a b");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

}  // namespace
}  // namespace tud
