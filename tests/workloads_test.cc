// The named-workload registry: specs round-trip through their names,
// MakeInstance is deterministic in the spec's seed and produces the
// documented shapes, and the zipfian generator is a correctly skewed,
// reproducible distribution over [0, n).

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "uncertain/tid_instance.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace tud {
namespace workloads {
namespace {

TEST(InstanceSpecTest, NameRoundTrips) {
  for (const InstanceSpec& spec :
       {InstanceSpec{InstanceSpec::Family::kLadder, 48, 2, 8},
        InstanceSpec{InstanceSpec::Family::kKTree, 64, 2, 8},
        InstanceSpec{InstanceSpec::Family::kKTree, 96, 3, 8},
        InstanceSpec{InstanceSpec::Family::kDensePath, 32, 2, 8}}) {
    auto parsed = ParseInstanceSpec(spec.Name());
    ASSERT_TRUE(parsed.has_value()) << spec.Name();
    EXPECT_EQ(parsed->family, spec.family);
    EXPECT_EQ(parsed->n, spec.n);
    if (spec.family == InstanceSpec::Family::kKTree) {
      EXPECT_EQ(parsed->k, spec.k);
    }
    EXPECT_EQ(parsed->Name(), spec.Name());
  }
  EXPECT_FALSE(ParseInstanceSpec("").has_value());
  EXPECT_FALSE(ParseInstanceSpec("ladder").has_value());
  EXPECT_FALSE(ParseInstanceSpec("mesh:48").has_value());
  EXPECT_FALSE(ParseInstanceSpec("ktree:64").has_value());
  EXPECT_FALSE(ParseInstanceSpec("ladder:abc").has_value());
}

TEST(InstanceSpecTest, MakeInstanceShapesAndDeterminism) {
  // Ladder: rungs - 1 levels x (2 rail edges + 1 rung edge).
  InstanceSpec ladder{InstanceSpec::Family::kLadder, 10, 2, 8};
  TidInstance a = MakeInstance(ladder);
  TidInstance b = MakeInstance(ladder);
  EXPECT_EQ(a.NumFacts(), 3u * (10 - 1));
  EXPECT_EQ(a.NumFacts(), b.NumFacts());  // Same seed, same instance.

  InstanceSpec other = ladder;
  other.seed = 9;
  // A different seed moves the (random) probabilities, not the shape.
  EXPECT_EQ(MakeInstance(other).NumFacts(), a.NumFacts());

  // Dense path on n vertices: R and T per vertex, S per edge.
  InstanceSpec path{InstanceSpec::Family::kDensePath, 16, 2, 8};
  EXPECT_EQ(MakeInstance(path).NumFacts(), 2u * 16 + 15);

  // Partial k-tree: at most the full k-tree's edge count.
  InstanceSpec ktree{InstanceSpec::Family::kKTree, 32, 2, 8};
  TidInstance kt = MakeInstance(ktree);
  EXPECT_GT(kt.NumFacts(), 0u);
  EXPECT_LE(kt.NumFacts(), 2u * 32);

  // Canonical endpoints match the generators' vertex layouts.
  EXPECT_EQ(CanonicalEndpoints(ladder), (std::pair<uint32_t, uint32_t>{0, 18}));
  EXPECT_EQ(CanonicalEndpoints(ktree), (std::pair<uint32_t, uint32_t>{0, 31}));
  EXPECT_EQ(CanonicalEndpoints(path), (std::pair<uint32_t, uint32_t>{0, 15}));
}

TEST(ZipfianTest, BoundsAndDeterminism) {
  ZipfianGenerator zipf(100, 0.99);
  Rng rng1(42), rng2(42);
  for (int i = 0; i < 5000; ++i) {
    uint64_t rank = zipf.Next(rng1);
    EXPECT_LT(rank, 100u);
    EXPECT_EQ(rank, zipf.Next(rng2));  // Same seed, same stream.
  }
  std::vector<uint32_t> mix1 = ZipfianQueryMix(64, 1000, 0.99, 7);
  std::vector<uint32_t> mix2 = ZipfianQueryMix(64, 1000, 0.99, 7);
  EXPECT_EQ(mix1, mix2);
  ASSERT_EQ(mix1.size(), 1000u);
  for (uint32_t rank : mix1) EXPECT_LT(rank, 64u);
}

TEST(ZipfianTest, SkewFavorsLowRanks) {
  constexpr uint64_t kItems = 50;
  constexpr int kDraws = 20000;
  ZipfianGenerator zipf(kItems, 0.99);
  Rng rng(13);
  std::vector<int> counts(kItems, 0);
  for (int i = 0; i < kDraws; ++i) counts[zipf.Next(rng)]++;
  // Rank 0 dominates: far above uniform, and above rank 1.
  EXPECT_GT(counts[0], 3 * kDraws / static_cast<int>(kItems));
  EXPECT_GT(counts[0], counts[1]);
  // The head carries most of the mass (theta ~ 1: the top 10% of items
  // should soak up well over a third of the draws).
  int head = 0;
  for (int i = 0; i < 5; ++i) head += counts[i];
  EXPECT_GT(head, kDraws / 3);
  // Every rank is reachable in a draw count this large.
  for (uint64_t i = 0; i < kItems; ++i) EXPECT_GE(counts[i], 0);
}

TEST(ZipfianTest, ThetaZeroApproachesUniform) {
  ZipfianGenerator zipf(10, 0.01);  // Near-uniform.
  Rng rng(5);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) counts[zipf.Next(rng)]++;
  for (int c : counts) {
    EXPECT_GT(c, 1000);  // Uniform would give 2000 each.
    EXPECT_LT(c, 4000);
  }
}

}  // namespace
}  // namespace workloads
}  // namespace tud
