// Resource-governed execution, end to end:
//  - QueryBudget / BudgetMeter trip semantics (cells, deadline, token);
//  - every engine returns a structured EngineStatus instead of aborting
//    when a budget trips or a request is malformed;
//  - AutoEngine *degrades* under a cell cap — junction tree falls to
//    hybrid/sampling with an honest error_bound and stats.degradations
//    — instead of surfacing the trip;
//  - ServingSession per-query deadlines, cancellation, typed load
//    shedding (kRejected) and queue-time-aware admission;
//  - EpochedServingSession answers malformed/governed queries with
//    statuses, never exceptions;
//  - IncrementalSession's governed Probability trips recoverably;
//  - the recoverable entry points of satellite 1 (TryRegister /
//    TrySetProbability / bool UpdateProbability);
//  - TaskScheduler contains a throwing task to itself (the worker and
//    every other task survive).

#include <atomic>
#include <chrono>
#include <future>
#include <limits>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "incremental/incremental_session.h"
#include "inference/engine.h"
#include "inference/junction_tree.h"
#include "queries/query_session.h"
#include "serving/scheduler.h"
#include "serving/server.h"
#include "uncertain/c_instance.h"
#include "uncertain/tid_instance.h"
#include "util/budget.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace tud {
namespace {

using serving::QueryOptions;
using serving::ServingOptions;
using serving::ServingSession;
using serving::TaskScheduler;

constexpr uint64_t kGenerousCells = uint64_t{1} << 40;

struct LadderFixture {
  QuerySession session;
  GateId lineage;
};

LadderFixture MakeLadder(uint32_t rungs = 14) {
  Rng rng(11);
  TidInstance tid = workloads::LadderTid(rng, rungs);
  LadderFixture f{QuerySession::FromCInstance(tid.ToPcInstance()),
                  kInvalidGate};
  f.lineage = f.session.ReachabilityLineage(0, 0, 2 * rungs - 2);
  return f;
}

// ---------------------------------------------------------------------------
// BudgetMeter
// ---------------------------------------------------------------------------

TEST(BudgetMeterTest, CellCapTrips) {
  QueryBudget budget;
  budget.max_table_cells = 100;
  BudgetMeter meter(budget);
  EXPECT_EQ(meter.Charge(100), EngineStatus::kOk);
  EXPECT_EQ(meter.Charge(1), EngineStatus::kResourceExhausted);
}

TEST(BudgetMeterTest, CancelTokenTrips) {
  CancelToken token;
  QueryBudget budget;
  budget.cancel = &token;
  BudgetMeter meter(budget);
  EXPECT_EQ(meter.Charge(1), EngineStatus::kOk);
  token.Cancel();
  EXPECT_EQ(meter.Charge(1), EngineStatus::kCancelled);
}

TEST(BudgetMeterTest, PastDeadlineTrips) {
  QueryBudget budget = QueryBudget::WithDeadlineMs(0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  BudgetMeter meter(budget);
  EXPECT_EQ(meter.CheckNow(), EngineStatus::kDeadlineExceeded);
}

TEST(BudgetMeterTest, DefaultBudgetIsUnlimited) {
  QueryBudget budget;
  EXPECT_TRUE(budget.unlimited());
  EXPECT_FALSE(budget.has_deadline());
  EXPECT_FALSE(budget.cancelled());
  EXPECT_FALSE(budget.past_deadline());
}

// ---------------------------------------------------------------------------
// Engine-level governance
// ---------------------------------------------------------------------------

TEST(GovernedEngineTest, JunctionTreeCellCapReturnsStatusNotAbort) {
  LadderFixture f = MakeLadder();
  const BoolCircuit& circuit = f.session.pcc().circuit();
  const EventRegistry& events = f.session.pcc().events();
  JunctionTreeEngine engine(/*seed_topological=*/false, /*cache_plans=*/true);

  QueryBudget tiny;
  tiny.max_table_cells = 1;
  EngineResult r = engine.Estimate(circuit, f.lineage, events, {}, tiny);
  EXPECT_EQ(r.status, EngineStatus::kResourceExhausted);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error_bound, 1.0);

  // A generous governed run is bit-identical to the ungoverned pass
  // (the governed kernels are the same kernels).
  const double expected = engine.Estimate(circuit, f.lineage, events).value;
  QueryBudget generous;
  generous.max_table_cells = kGenerousCells;
  EngineResult g = engine.Estimate(circuit, f.lineage, events, {}, generous);
  EXPECT_EQ(g.status, EngineStatus::kOk);
  EXPECT_EQ(g.value, expected);
  EXPECT_EQ(g.error_bound, 0.0);

  // The cap trip is recoverable: the same engine keeps answering
  // ungoverned queries exactly afterwards.
  EXPECT_EQ(engine.Estimate(circuit, f.lineage, events).value, expected);
}

TEST(GovernedEngineTest, PastDeadlinePreemptsExecution) {
  LadderFixture f = MakeLadder();
  JunctionTreeEngine engine;
  QueryBudget budget = QueryBudget::WithDeadlineMs(0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EngineResult r = engine.Estimate(f.session.pcc().circuit(), f.lineage,
                                   f.session.pcc().events(), {}, budget);
  EXPECT_EQ(r.status, EngineStatus::kDeadlineExceeded);
}

TEST(GovernedEngineTest, CancelledTokenPreemptsExecution) {
  LadderFixture f = MakeLadder();
  JunctionTreeEngine engine;
  CancelToken token;
  token.Cancel();
  QueryBudget budget;
  budget.cancel = &token;
  EngineResult r = engine.Estimate(f.session.pcc().circuit(), f.lineage,
                                   f.session.pcc().events(), {}, budget);
  EXPECT_EQ(r.status, EngineStatus::kCancelled);
}

TEST(GovernedEngineTest, MalformedRequestsReturnInvalidArgument) {
  LadderFixture f = MakeLadder();
  const BoolCircuit& circuit = f.session.pcc().circuit();
  const EventRegistry& events = f.session.pcc().events();
  JunctionTreeEngine engine;

  // Out-of-range root.
  EngineResult bad_root = engine.Estimate(
      circuit, static_cast<GateId>(circuit.NumGates() + 7), events);
  EXPECT_EQ(bad_root.status, EngineStatus::kInvalidArgument);

  // Unknown evidence event.
  Evidence bad_evidence{{static_cast<EventId>(events.size() + 3), true}};
  EngineResult bad_ev =
      engine.Estimate(circuit, f.lineage, events, bad_evidence);
  EXPECT_EQ(bad_ev.status, EngineStatus::kInvalidArgument);

  // A malformed batch fails whole, typed.
  std::vector<GateId> roots{f.lineage,
                            static_cast<GateId>(circuit.NumGates() + 1)};
  std::vector<EngineResult> batch =
      engine.EstimateBatch(circuit, roots, events);
  ASSERT_EQ(batch.size(), roots.size());
  for (const EngineResult& r : batch)
    EXPECT_EQ(r.status, EngineStatus::kInvalidArgument);
}

TEST(GovernedEngineTest, BatchDeadlineShortCircuitsEveryRoot) {
  LadderFixture f = MakeLadder();
  JunctionTreeEngine engine(/*seed_topological=*/false, /*cache_plans=*/true);
  std::vector<GateId> roots(4, f.lineage);
  QueryBudget budget = QueryBudget::WithDeadlineMs(0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  std::vector<EngineResult> batch = engine.EstimateBatch(
      f.session.pcc().circuit(), roots, f.session.pcc().events(), {}, budget);
  ASSERT_EQ(batch.size(), roots.size());
  for (const EngineResult& r : batch)
    EXPECT_EQ(r.status, EngineStatus::kDeadlineExceeded);
}

TEST(GovernedEngineTest, ConditioningOnZeroProbabilityObservation) {
  EventRegistry events;
  EventId a = events.Register("a", 0.5);
  EventId b = events.Register("b", 0.0);
  BoolCircuit circuit;
  GateId root = circuit.AddOr({circuit.AddVar(a), circuit.AddVar(b)});
  ConditioningEngine engine;
  Evidence impossible{{b, true}};

  // Ungoverned: the conditional does not exist — an answer, not an abort.
  EngineResult r = engine.Estimate(circuit, root, events, impossible);
  EXPECT_EQ(r.status, EngineStatus::kInvalidArgument);

  // Governed path reports the same.
  QueryBudget generous;
  generous.max_table_cells = kGenerousCells;
  EngineResult g = engine.Estimate(circuit, root, events, impossible,
                                   generous);
  EXPECT_EQ(g.status, EngineStatus::kInvalidArgument);
}

TEST(GovernedEngineTest, SamplingHonoursSampleCap) {
  EventRegistry events;
  GateId root;
  Rng rng(5);
  BoolCircuit circuit =
      workloads::MakeCoreTentacleCircuit(rng, 6, 8, events, &root);
  SamplingEngine engine(/*num_samples=*/10000);
  QueryBudget budget;
  budget.max_samples = 128;
  EngineResult r = engine.Estimate(circuit, root, events, {}, budget);
  EXPECT_EQ(r.status, EngineStatus::kOk);
  EXPECT_EQ(r.stats.num_samples, 128u);
  EXPECT_GT(r.error_bound, 0.0);
}

TEST(GovernedEngineTest, ExhaustiveOverThirtyEventsIsRecoverable) {
  EventRegistry events;
  GateId root;
  Rng rng(6);
  BoolCircuit circuit =
      workloads::MakeCoreTentacleCircuit(rng, 8, 20, events, &root);
  ASSERT_GT(events.size(), 30u);
  ExhaustiveEngine engine;
  QueryBudget generous;
  generous.max_table_cells = kGenerousCells;
  EngineResult r = engine.Estimate(circuit, root, events, {}, generous);
  EXPECT_EQ(r.status, EngineStatus::kResourceExhausted);
}

TEST(GovernedEngineTest, BddNodeCapIsRecoverable) {
  LadderFixture f = MakeLadder(10);
  BddEngine engine;
  QueryBudget tiny;
  tiny.max_table_cells = 2;  // BDD nodes are charged as cells.
  EngineResult r = engine.Estimate(f.session.pcc().circuit(), f.lineage,
                                   f.session.pcc().events(), {}, tiny);
  EXPECT_EQ(r.status, EngineStatus::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// AutoEngine degradation
// ---------------------------------------------------------------------------

TEST(AutoEngineDegradationTest, CellCapDegradesToHonestEstimate) {
  EventRegistry events;
  GateId root;
  Rng rng(7);
  BoolCircuit circuit =
      workloads::MakeCoreTentacleCircuit(rng, 8, 30, events, &root);
  // > 18 cone events: the exhaustive and BDD rungs are skipped, so the
  // junction tree is the first rung that runs.
  ASSERT_GT(events.size(), 18u);

  // Price the exact plan, then cap the budget just below it: the JT rung
  // must trip kResourceExhausted and the ladder must degrade.
  JunctionTreePlan plan =
      JunctionTreePlan::Build(JunctionTreeAnalysis::Analyze(circuit, root));
  ASSERT_EQ(plan.build_status(), EngineStatus::kOk);
  const uint64_t cells = static_cast<uint64_t>(plan.total_cells());
  // The cap must still admit at least a handful of Monte-Carlo samples
  // (one sample charges NumGates cells) for the degraded answer.
  ASSERT_GT(cells, 4 * circuit.NumGates());

  AutoEngine engine;
  QueryBudget budget;
  budget.max_table_cells = cells - 1;
  EngineResult r = engine.Estimate(circuit, root, events, {}, budget);
  EXPECT_EQ(r.status, EngineStatus::kOk);
  EXPECT_GE(r.stats.degradations, 1u);
  EXPECT_STRNE(r.engine, "junction_tree");
  EXPECT_GT(r.error_bound, 0.0);  // An estimate, honestly bounded.
  EXPECT_GE(r.stats.num_samples, 1u);
  // The degraded value is a probability, not garbage.
  EXPECT_GE(r.value, 0.0);
  EXPECT_LE(r.value, 1.0);
}

TEST(AutoEngineDegradationTest, CapBelowOneSampleReturnsResourceExhausted) {
  EventRegistry events;
  GateId root;
  Rng rng(7);
  BoolCircuit circuit =
      workloads::MakeCoreTentacleCircuit(rng, 8, 30, events, &root);
  AutoEngine engine;
  QueryBudget budget;
  budget.max_table_cells = 1;  // Below even a single sample's charge.
  EngineResult r = engine.Estimate(circuit, root, events, {}, budget);
  EXPECT_EQ(r.status, EngineStatus::kResourceExhausted);
  EXPECT_FALSE(r.ok());
  EXPECT_GE(r.stats.degradations, 1u);
}

TEST(AutoEngineDegradationTest, HardTripsSurfaceDirectly) {
  EventRegistry events;
  GateId root;
  Rng rng(7);
  BoolCircuit circuit =
      workloads::MakeCoreTentacleCircuit(rng, 8, 30, events, &root);
  AutoEngine engine;
  CancelToken token;
  token.Cancel();
  QueryBudget budget;
  budget.cancel = &token;
  EngineResult r = engine.Estimate(circuit, root, events, {}, budget);
  EXPECT_EQ(r.status, EngineStatus::kCancelled);
  EXPECT_EQ(r.stats.degradations, 0u);
}

// ---------------------------------------------------------------------------
// Satellite 1: recoverable entry points
// ---------------------------------------------------------------------------

TEST(RecoverableEntryPointsTest, TryRegisterRejectsMalformedInput) {
  EventRegistry events;
  EXPECT_FALSE(events.TryRegister("bad", 1.5).has_value());
  EXPECT_FALSE(events.TryRegister("bad", -0.1).has_value());
  std::optional<EventId> ok = events.TryRegister("fine", 0.25);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(events.probability(*ok), 0.25);
  EXPECT_FALSE(events.TryRegister("fine", 0.5).has_value());  // Duplicate.
  EXPECT_EQ(events.size(), 1u);
}

TEST(RecoverableEntryPointsTest, TrySetProbabilityLeavesRegistryUntouched) {
  EventRegistry events;
  EventId e = events.Register("e", 0.5);
  EXPECT_FALSE(events.TrySetProbability(e + 10, 0.3));  // Unknown id.
  EXPECT_FALSE(events.TrySetProbability(e, 1.5));       // Bad probability.
  EXPECT_EQ(events.probability(e), 0.5);
  EXPECT_TRUE(events.TrySetProbability(e, 0.75));
  EXPECT_EQ(events.probability(e), 0.75);
}

TEST(RecoverableEntryPointsTest, SessionUpdateProbabilityReturnsFalse) {
  LadderFixture f = MakeLadder(8);
  const size_t num_events = f.session.pcc().events().size();
  EXPECT_FALSE(f.session.UpdateProbability(
      static_cast<EventId>(num_events + 5), 0.5));
  EXPECT_FALSE(f.session.UpdateProbability(0, 2.0));
  EXPECT_TRUE(f.session.UpdateProbability(0, 0.5));

  incremental::IncrementalSession inc(f.session);
  EXPECT_FALSE(inc.UpdateProbability(
      static_cast<EventId>(num_events + 5), 0.5));
  EXPECT_EQ(inc.stats().probability_updates, 0u);
  EXPECT_TRUE(inc.UpdateProbability(0, 0.6));
  EXPECT_EQ(inc.stats().probability_updates, 1u);
}

// ---------------------------------------------------------------------------
// IncrementalSession governed Probability
// ---------------------------------------------------------------------------

TEST(IncrementalGovernanceTest, GovernedProbabilityTripsRecoverably) {
  constexpr uint32_t kRungs = 12;
  Rng rng(9);
  TidInstance tid = workloads::LadderTid(rng, kRungs);
  QuerySession session = QuerySession::FromCInstance(tid.ToPcInstance());
  incremental::IncrementalSession inc(session);
  const incremental::QueryId q =
      inc.RegisterReachability(0, 0, 2 * kRungs - 2);

  const double expected = inc.Probability(q).value;

  // Generous governed run: same bits, kOk.
  QueryBudget generous;
  generous.max_table_cells = kGenerousCells;
  EngineResult g = inc.Probability(q, {}, generous);
  EXPECT_EQ(g.status, EngineStatus::kOk);
  EXPECT_EQ(g.value, expected);

  // A cell cap below the plan trips with a status, not an abort...
  inc.UpdateProbability(0, 0.9);
  QueryBudget tiny;
  tiny.max_table_cells = 1;
  EngineResult t = inc.Probability(q, {}, tiny);
  EXPECT_EQ(t.status, EngineStatus::kResourceExhausted);
  EXPECT_EQ(t.error_bound, 1.0);

  // ...and the session recovers: the next ungoverned query is
  // bit-identical to a fresh full evaluation of the current state.
  const double fresh = JunctionTreeProbability(
      session.pcc().circuit(), inc.root(q), session.pcc().events());
  EXPECT_EQ(inc.Probability(q).value, fresh);
}

// ---------------------------------------------------------------------------
// ServingSession governance
// ---------------------------------------------------------------------------

TEST(ServingGovernanceTest, GovernedSubmitMatchesUngoverned) {
  LadderFixture f = MakeLadder();
  ServingOptions options;
  options.num_threads = 2;
  ServingSession serving = ServingSession::Over(f.session, options);
  const double expected = serving.Evaluate(f.lineage).value;

  QueryOptions query;
  query.deadline_ms = 60000;  // A deadline this query cannot miss.
  query.max_table_cells = kGenerousCells;
  EngineResult r = serving.Submit(f.lineage, {}, query).get();
  EXPECT_EQ(r.status, EngineStatus::kOk);
  EXPECT_EQ(r.value, expected);
  serving.Drain();
}

TEST(ServingGovernanceTest, CellCapReturnsResourceExhausted) {
  LadderFixture f = MakeLadder();
  ServingOptions options;
  options.num_threads = 2;
  ServingSession serving = ServingSession::Over(f.session, options);
  QueryOptions query;
  query.max_table_cells = 1;
  EXPECT_EQ(serving.Evaluate(f.lineage, {}, query).status,
            EngineStatus::kResourceExhausted);
  EXPECT_EQ(serving.Submit(f.lineage, {}, query).get().status,
            EngineStatus::kResourceExhausted);
  serving.Drain();
}

TEST(ServingGovernanceTest, CancelledBeforeSubmitResolvesCancelled) {
  LadderFixture f = MakeLadder();
  ServingOptions options;
  options.num_threads = 2;
  ServingSession serving = ServingSession::Over(f.session, options);
  QueryOptions query;
  auto token = std::make_shared<CancelToken>();
  token->Cancel();
  query.cancel = token;
  EngineResult r = serving.Submit(f.lineage, {}, query).get();
  EXPECT_EQ(r.status, EngineStatus::kCancelled);
  serving.Drain();
}

// Deterministic shed test: one worker is pinned on a latch, so the
// coalescing buffer cannot drain; with shed_capacity=1 the second
// submission must be rejected typed and immediately.
TEST(ServingGovernanceTest, ShedCapacityRejectsTyped) {
  LadderFixture f = MakeLadder();
  ServingOptions options;
  options.num_threads = 1;
  options.coalesce = true;
  options.shed_capacity = 1;
  ServingSession serving = ServingSession::Over(f.session, options);

  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  ASSERT_TRUE(serving.scheduler().Submit([released] { released.wait(); }));

  std::future<EngineResult> first = serving.Submit(f.lineage);
  std::future<EngineResult> second = serving.Submit(f.lineage);
  // The shed future is already resolved — before any worker ran it.
  ASSERT_EQ(second.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(second.get().status, EngineStatus::kRejected);

  release.set_value();
  serving.Drain();
  EXPECT_EQ(first.get().status, EngineStatus::kOk);
}

// The pure admission decision: backlog is priced in table cells
// against a calibrated ns-per-kilocell rate, so one queued monster
// plan weighs what it costs — not one fleet-average "query".
TEST(ServingGovernanceTest, ShouldShedPricesBacklogPerPlan) {
  // Cold rate or empty backlog: never shed (admit-on-doubt).
  EXPECT_FALSE(ServingSession::ShouldShed(0, 1000, 4, 1));
  EXPECT_FALSE(ServingSession::ShouldShed(uint64_t{1} << 20, 0, 4, 1));
  // Spent deadline with a warm, nonempty backlog: always shed.
  EXPECT_TRUE(ServingSession::ShouldShed(1, 1, 4, 0));
  EXPECT_TRUE(ServingSession::ShouldShed(1, 1, 4, -5));
  // 1024 cells at 1000 ns/kilocell on one worker ≈ 1000 ns of backlog.
  EXPECT_FALSE(ServingSession::ShouldShed(1024, 1000, 1, 2000));
  EXPECT_TRUE(ServingSession::ShouldShed(1024, 1000, 1, 500));
  // The same backlog spread over 4 workers drains 4x faster.
  EXPECT_FALSE(ServingSession::ShouldShed(1024, 1000, 4, 500));
  // Per-plan sizing: a single 2^30-cell plan in the queue sheds a 1 ms
  // deadline that 64 cells' worth of backlog would sail through.
  EXPECT_TRUE(
      ServingSession::ShouldShed(uint64_t{1} << 30, 1000, 8, 1'000'000));
  EXPECT_FALSE(ServingSession::ShouldShed(64, 1000, 8, 1'000'000));
  // workers = 0 is clamped, not divided by.
  EXPECT_TRUE(ServingSession::ShouldShed(1024, 1000, 0, 500));
}

// Queue-time-aware admission end to end: once the cost model is warm
// and queries are queued behind a pinned worker, a deadline the
// backlog will certainly outlast is rejected at the door in O(1).
TEST(ServingGovernanceTest, QueueAwareAdmissionRejectsInfeasibleDeadline) {
  LadderFixture f = MakeLadder();
  ServingOptions options;
  options.num_threads = 1;
  options.coalesce = true;
  ServingSession serving = ServingSession::Over(f.session, options);

  // Warm the EWMA with one served query.
  EXPECT_EQ(serving.Submit(f.lineage).get().status, EngineStatus::kOk);

  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  ASSERT_TRUE(serving.scheduler().Submit([released] { released.wait(); }));
  std::vector<std::future<EngineResult>> queued;
  for (int i = 0; i < 4; ++i) queued.push_back(serving.Submit(f.lineage));

  QueryOptions query;
  query.deadline_ms = 1e-4;  // 100ns: far below one EWMA service time.
  std::future<EngineResult> doomed = serving.Submit(f.lineage, {}, query);
  ASSERT_EQ(doomed.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(doomed.get().status, EngineStatus::kRejected);

  release.set_value();
  serving.Drain();
  for (auto& future : queued)
    EXPECT_EQ(future.get().status, EngineStatus::kOk);
}

// ---------------------------------------------------------------------------
// EpochedServingSession governance
// ---------------------------------------------------------------------------

TEST(EpochedGovernanceTest, StatusesInsteadOfExceptions) {
  constexpr uint32_t kRungs = 10;
  Rng rng(13);
  TidInstance tid = workloads::LadderTid(rng, kRungs);
  QuerySession session = QuerySession::FromCInstance(tid.ToPcInstance());
  incremental::IncrementalSession inc(session);
  const incremental::QueryId q =
      inc.RegisterReachability(0, 0, 2 * kRungs - 2);

  incremental::EpochManager epochs;
  ServingOptions options;
  options.num_threads = 2;
  {
    // No epoch yet: an answer, not a crash.
    serving::EpochedServingSession early(epochs, options);
    EXPECT_EQ(early.Evaluate(q).status, EngineStatus::kInvalidArgument);
    early.Drain();
  }
  const double expected = inc.Probability(q).value;
  inc.PublishSnapshot(epochs);

  serving::EpochedServingSession serving(epochs, options);
  EXPECT_EQ(serving.Evaluate(q).value, expected);
  // An index the epoch does not carry.
  EXPECT_EQ(serving.Evaluate(q + 100).status,
            EngineStatus::kInvalidArgument);
  EXPECT_EQ(serving.Submit(q + 100).get().status,
            EngineStatus::kInvalidArgument);

  // Governed: generous budget matches, tiny cap trips, cancellation
  // preempts.
  QueryOptions generous;
  generous.deadline_ms = 60000;
  generous.max_table_cells = kGenerousCells;
  EngineResult g = serving.Submit(q, {}, generous).get();
  EXPECT_EQ(g.status, EngineStatus::kOk);
  EXPECT_EQ(g.value, expected);

  QueryOptions tiny;
  tiny.max_table_cells = 1;
  EXPECT_EQ(serving.Evaluate(q, {}, tiny).status,
            EngineStatus::kResourceExhausted);

  QueryOptions cancelled;
  auto token = std::make_shared<CancelToken>();
  token->Cancel();
  cancelled.cancel = token;
  EXPECT_EQ(serving.Submit(q, {}, cancelled).get().status,
            EngineStatus::kCancelled);
  serving.Drain();
}

// ---------------------------------------------------------------------------
// Satellite 2: scheduler exception containment
// ---------------------------------------------------------------------------

TEST(SchedulerContainmentTest, ThrowingTaskFailsOnlyItself) {
  TaskScheduler::Options options;
  options.num_threads = 2;
  TaskScheduler scheduler(options);
  std::atomic<uint64_t> ran{0};
  ASSERT_TRUE(scheduler.Submit([] { throw std::runtime_error("boom"); }));
  constexpr uint64_t kTasks = 200;
  for (uint64_t i = 0; i < kTasks; ++i)
    ASSERT_TRUE(scheduler.Submit(
        [&ran] { ran.fetch_add(1, std::memory_order_relaxed); }));
  scheduler.Drain();
  // Every other task ran; the throw was contained and counted; the
  // workers survived (a dead worker would strand queued tasks forever).
  EXPECT_EQ(ran.load(), kTasks);
  TaskScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.executed, kTasks);
  EXPECT_EQ(stats.submitted, kTasks + 1);

  // The scheduler is still fully usable after the contained failure.
  ASSERT_TRUE(scheduler.Submit(
      [&ran] { ran.fetch_add(1, std::memory_order_relaxed); }));
  scheduler.Drain();
  EXPECT_EQ(ran.load(), kTasks + 1);
}

}  // namespace
}  // namespace tud
