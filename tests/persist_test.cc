// The persistence layer's unit contracts:
//  - CRC32C against the published test vectors;
//  - WAL record round-trips for every record type, torn-tail
//    discrimination (a truncated final record recovers kOk, dropping
//    exactly the torn bytes) vs mid-log corruption (kIoError, never a
//    silently shortened log);
//  - checkpoint round-trips and corruption detection;
//  - DurableSession ordering: a mutation the session rejects leaves no
//    WAL record (append-after-validate), and acknowledged mutations
//    survive Recover bit-identically;
//  - replay idempotence: recovering twice, and recovering a log whose
//    head duplicates checkpointed records (truncate_wal_on_checkpoint
//    off), both land on the same state as the uncrashed session;
//  - randomized mutation streams vs an in-memory oracle.

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "incremental/incremental_session.h"
#include "persist/checkpoint.h"
#include "persist/codec.h"
#include "persist/durable_session.h"
#include "persist/wal.h"
#include "queries/query_session.h"
#include "uncertain/pcc_instance.h"
#include "util/budget.h"
#include "util/rng.h"

namespace tud {
namespace persist {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() /
                       ("tud_persist_" + tag + "_" +
                        std::to_string(::getpid()));
  fs::remove_all(dir);
  return dir.string();
}

Schema EdgeSchema() {
  Schema schema;
  schema.AddRelation("E", 2);
  return schema;
}

// ---------------------------------------------------------------------------
// CRC32C
// ---------------------------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 / Castagnoli reference vectors.
  const std::string check = "123456789";
  EXPECT_EQ(Crc32c(reinterpret_cast<const uint8_t*>(check.data()),
                   check.size()),
            0xE3069283u);
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
  const std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32cTest, SingleBitFlipChangesSum) {
  std::vector<uint8_t> data(64);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i);
  const uint32_t clean = Crc32c(data.data(), data.size());
  for (size_t bit = 0; bit < data.size() * 8; bit += 37) {
    data[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_NE(Crc32c(data.data(), data.size()), clean) << "bit " << bit;
    data[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  }
}

// ---------------------------------------------------------------------------
// WAL
// ---------------------------------------------------------------------------

std::vector<WalRecord> SampleRecords() {
  std::vector<WalRecord> records;
  {
    WalRecord r;
    r.type = WalRecordType::kRegisterEvent;
    r.name = "sensor";
    r.probability = 0.25;
    r.event = 3;
    records.push_back(r);
  }
  {
    WalRecord r;
    r.type = WalRecordType::kSetProbability;
    r.event = 1;
    r.probability = 0.5;
    records.push_back(r);
  }
  {
    WalRecord r;
    r.type = WalRecordType::kUpdateProbability;
    r.event = 2;
    r.probability = 0.875;
    records.push_back(r);
  }
  {
    WalRecord r;
    r.type = WalRecordType::kInsertFact;
    r.relation = 0;
    r.args = {4, 7};
    r.probability = 0.625;
    r.fact = 9;
    r.event = 11;
    r.root = 23;
    records.push_back(r);
  }
  {
    WalRecord r;
    r.type = WalRecordType::kDeleteFact;
    r.fact = 9;
    records.push_back(r);
  }
  {
    WalRecord r;
    r.type = WalRecordType::kEpochPublish;
    r.epoch = 17;
    records.push_back(r);
  }
  {
    WalRecord r;
    r.type = WalRecordType::kRegisterCq;
    r.cq.AddAtom(0, {Term::V(0), Term::C(5)});
    r.root = 31;
    records.push_back(r);
  }
  {
    WalRecord r;
    r.type = WalRecordType::kRegisterReachability;
    r.relation = 0;
    r.source = 0;
    r.target = 6;
    r.root = 37;
    records.push_back(r);
  }
  return records;
}

void ExpectRecordsEqual(const WalRecord& got, const WalRecord& want) {
  EXPECT_EQ(got.type, want.type);
  EXPECT_EQ(got.name, want.name);
  EXPECT_EQ(got.probability, want.probability);
  EXPECT_EQ(got.event, want.event);
  EXPECT_EQ(got.relation, want.relation);
  EXPECT_EQ(got.args, want.args);
  EXPECT_EQ(got.fact, want.fact);
  EXPECT_EQ(got.root, want.root);
  EXPECT_EQ(got.source, want.source);
  EXPECT_EQ(got.target, want.target);
  EXPECT_EQ(got.epoch, want.epoch);
  ASSERT_EQ(got.cq.NumAtoms(), want.cq.NumAtoms());
  for (size_t a = 0; a < got.cq.NumAtoms(); ++a) {
    EXPECT_EQ(got.cq.atom(a).relation, want.cq.atom(a).relation);
    ASSERT_EQ(got.cq.atom(a).terms.size(), want.cq.atom(a).terms.size());
    for (size_t t = 0; t < got.cq.atom(a).terms.size(); ++t)
      EXPECT_TRUE(got.cq.atom(a).terms[t] == want.cq.atom(a).terms[t]);
  }
}

TEST(WalTest, RoundTripsEveryRecordType) {
  const std::string dir = FreshDir("wal_roundtrip");
  fs::create_directories(dir);
  const std::string path = dir + "/wal-0.log";

  const std::vector<WalRecord> records = SampleRecords();
  {
    std::unique_ptr<WalWriter> writer;
    ASSERT_EQ(WalWriter::Create(path, 5, WalOptions{}, &writer),
              EngineStatus::kOk);
    for (const WalRecord& r : records)
      ASSERT_EQ(writer->Append(r), EngineStatus::kOk);
    ASSERT_EQ(writer->Sync(), EngineStatus::kOk);
    EXPECT_EQ(writer->next_lsn(), 5 + records.size());
  }

  const WalReadResult read = ReadWal(path);
  ASSERT_EQ(read.status, EngineStatus::kOk);
  EXPECT_EQ(read.base_lsn, 5u);
  EXPECT_EQ(read.torn_bytes, 0u);
  ASSERT_EQ(read.records.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(read.records[i].lsn, 5 + i);
    ExpectRecordsEqual(read.records[i], records[i]);
  }
  fs::remove_all(dir);
}

TEST(WalTest, TornTailRecoversPrefixAndTruncates) {
  const std::string dir = FreshDir("wal_torn");
  fs::create_directories(dir);
  const std::string path = dir + "/wal-0.log";

  const std::vector<WalRecord> records = SampleRecords();
  std::unique_ptr<WalWriter> writer;
  ASSERT_EQ(WalWriter::Create(path, 0, WalOptions{}, &writer),
            EngineStatus::kOk);
  for (const WalRecord& r : records)
    ASSERT_EQ(writer->Append(r), EngineStatus::kOk);
  writer.reset();

  const uint64_t full_size = fs::file_size(path);
  const WalReadResult clean = ReadWal(path);
  ASSERT_EQ(clean.status, EngineStatus::kOk);
  ASSERT_EQ(clean.valid_bytes, full_size);

  // Chop the file anywhere strictly inside the final record: the
  // reader must hand back exactly the other records, flag the torn
  // bytes, and TruncateToValidPrefix must leave a clean log.
  const uint64_t last_frame =
      8 + EncodeWalRecord(records.back()).size();
  for (uint64_t cut = 1; cut < last_frame; cut += 3) {
    fs::resize_file(path, full_size - cut);
    const WalReadResult torn = ReadWal(path);
    ASSERT_EQ(torn.status, EngineStatus::kOk) << "cut " << cut;
    EXPECT_EQ(torn.records.size(), records.size() - 1);
    EXPECT_EQ(torn.torn_bytes, last_frame - cut);
    EXPECT_EQ(torn.valid_bytes + torn.torn_bytes, full_size - cut);

    ASSERT_EQ(TruncateToValidPrefix(path, torn.valid_bytes),
              EngineStatus::kOk);
    const WalReadResult after = ReadWal(path);
    ASSERT_EQ(after.status, EngineStatus::kOk);
    EXPECT_EQ(after.records.size(), records.size() - 1);
    EXPECT_EQ(after.torn_bytes, 0u);
    // Restore the full file for the next cut.
    fs::remove(path);
    std::unique_ptr<WalWriter> rewriter;
    ASSERT_EQ(WalWriter::Create(path, 0, WalOptions{}, &rewriter),
              EngineStatus::kOk);
    for (const WalRecord& r : records)
      ASSERT_EQ(rewriter->Append(r), EngineStatus::kOk);
  }
  fs::remove_all(dir);
}

TEST(WalTest, MidLogCorruptionIsTypedNotSilent) {
  const std::string dir = FreshDir("wal_corrupt");
  fs::create_directories(dir);
  const std::string path = dir + "/wal-0.log";

  const std::vector<WalRecord> records = SampleRecords();
  std::unique_ptr<WalWriter> writer;
  ASSERT_EQ(WalWriter::Create(path, 0, WalOptions{}, &writer),
            EngineStatus::kOk);
  for (const WalRecord& r : records)
    ASSERT_EQ(writer->Append(r), EngineStatus::kOk);
  writer.reset();

  // Flip one payload byte of the *first* record: a corruption in the
  // middle of the log (records follow it) can never be explained as a
  // torn tail and must surface as kIoError.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(24 + 8 + 2);  // header + first frame header + 2.
    char byte = 0;
    f.seekg(24 + 8 + 2);
    f.read(&byte, 1);
    byte ^= 0x40;
    f.seekp(24 + 8 + 2);
    f.write(&byte, 1);
  }
  const WalReadResult read = ReadWal(path);
  EXPECT_EQ(read.status, EngineStatus::kIoError);
  fs::remove_all(dir);
}

TEST(WalTest, DestroyedHeaderIsTypedNotSilent) {
  const std::string dir = FreshDir("wal_header");
  fs::create_directories(dir);
  const std::string path = dir + "/wal-0.log";
  std::unique_ptr<WalWriter> writer;
  ASSERT_EQ(WalWriter::Create(path, 0, WalOptions{}, &writer),
            EngineStatus::kOk);
  writer.reset();
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0);
    f.write("XXXXXXXX", 8);
  }
  const WalReadResult read = ReadWal(path);
  EXPECT_EQ(read.status, EngineStatus::kIoError);
  EXPECT_TRUE(read.bad_header);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// DurableSession: a small scripted workload and its in-memory oracle
// ---------------------------------------------------------------------------

/// One high-level mutation, applied identically to a DurableSession and
/// to the in-memory oracle. Each op maps to exactly one WAL record, so
/// op index == LSN (with no intervening checkpoint rotation).
struct Op {
  enum Kind {
    kInsert,
    kDelete,
    kUpdateProb,
    kSetProb,
    kRegisterEvent,
    kRegisterReach,
    kPublish,
  } kind = kInsert;
  std::vector<Value> args;  ///< kInsert.
  double probability = 0.5;
  size_t insert_index = 0;  ///< kDelete: which prior insert to delete.
  EventId event = 0;        ///< kUpdateProb / kSetProb.
  std::string name;         ///< kRegisterEvent.
  Value source = 0, target = 0;  ///< kRegisterReach.
};

/// A chain 0-1-2-3-4 with a few chords, then a mixed mutation tail:
/// inserts that extend the cone, deletes, probability updates of both
/// phases, a named event, and epoch markers.
std::vector<Op> ScriptedOps() {
  std::vector<Op> ops;
  auto insert = [&](Value a, Value b, double p) {
    Op op;
    op.kind = Op::kInsert;
    op.args = {a, b};
    op.probability = p;
    ops.push_back(op);
  };
  insert(0, 1, 0.5);
  insert(1, 2, 0.625);
  insert(2, 3, 0.75);
  insert(3, 4, 0.25);
  insert(0, 2, 0.375);
  {
    Op op;
    op.kind = Op::kRegisterReach;
    op.source = 0;
    op.target = 4;
    ops.push_back(op);
  }
  {
    Op op;
    op.kind = Op::kRegisterEvent;
    op.name = "supply";
    op.probability = 0.9;
    ops.push_back(op);
  }
  insert(1, 3, 0.5);       // Covered insert.
  insert(4, 5, 0.8125);    // Cone-growing insert.
  {
    Op op;
    op.kind = Op::kUpdateProb;
    op.event = 1;
    op.probability = 0.3125;
    ops.push_back(op);
  }
  {
    Op op;
    op.kind = Op::kPublish;
    ops.push_back(op);
  }
  {
    Op op;
    op.kind = Op::kDelete;
    op.insert_index = 5;  // The covered (1,3) insert.
    ops.push_back(op);
  }
  {
    Op op;
    op.kind = Op::kSetProb;
    op.event = 2;
    op.probability = 0.4375;
    ops.push_back(op);
  }
  insert(2, 4, 0.5625);
  {
    Op op;
    op.kind = Op::kUpdateProb;
    op.event = 0;
    op.probability = 0.6875;
    ops.push_back(op);
  }
  {
    Op op;
    op.kind = Op::kPublish;
    ops.push_back(op);
  }
  return ops;
}

/// Applies ops[0..count) to a durable session. Every op must be
/// accepted (the script is valid by construction).
void ApplyToDurable(DurableSession& durable, const std::vector<Op>& ops,
                    size_t count, incremental::EpochManager* epochs) {
  std::vector<incremental::InsertedFact> inserted;
  for (size_t i = 0; i < count; ++i) {
    const Op& op = ops[i];
    switch (op.kind) {
      case Op::kInsert: {
        incremental::InsertedFact out;
        ASSERT_EQ(durable.InsertFact(0, op.args, op.probability, &out),
                  EngineStatus::kOk)
            << "op " << i;
        inserted.push_back(out);
        break;
      }
      case Op::kDelete:
        ASSERT_EQ(durable.DeleteFact(inserted[op.insert_index].fact),
                  EngineStatus::kOk)
            << "op " << i;
        break;
      case Op::kUpdateProb:
        ASSERT_EQ(durable.UpdateProbability(op.event, op.probability),
                  EngineStatus::kOk)
            << "op " << i;
        break;
      case Op::kSetProb:
        ASSERT_EQ(durable.SetProbability(op.event, op.probability),
                  EngineStatus::kOk)
            << "op " << i;
        break;
      case Op::kRegisterEvent:
        ASSERT_EQ(durable.RegisterEvent(op.name, op.probability),
                  EngineStatus::kOk)
            << "op " << i;
        break;
      case Op::kRegisterReach:
        ASSERT_EQ(durable.RegisterReachability(0, op.source, op.target),
                  EngineStatus::kOk)
            << "op " << i;
        break;
      case Op::kPublish:
        ASSERT_EQ(durable.PublishSnapshot(*epochs), EngineStatus::kOk)
            << "op " << i;
        break;
    }
  }
}

/// The oracle: the same ops applied to a plain in-memory session.
/// Epoch publishes are skipped — they do not change query answers.
struct Oracle {
  std::unique_ptr<QuerySession> session;
  std::unique_ptr<incremental::IncrementalSession> inc;
  std::vector<incremental::InsertedFact> inserted;
  std::vector<incremental::QueryId> queries;

  explicit Oracle(const Schema& schema) {
    session = std::make_unique<QuerySession>(PccInstance(schema));
    inc = std::make_unique<incremental::IncrementalSession>(*session);
  }

  void Apply(const std::vector<Op>& ops, size_t count) {
    for (size_t i = 0; i < count; ++i) {
      const Op& op = ops[i];
      switch (op.kind) {
        case Op::kInsert:
          inserted.push_back(inc->InsertFact(0, op.args, op.probability));
          break;
        case Op::kDelete:
          inc->DeleteFact(inserted[op.insert_index].fact);
          break;
        case Op::kUpdateProb:
          inc->UpdateProbability(op.event, op.probability);
          break;
        case Op::kSetProb:
          session->UpdateProbability(op.event, op.probability);
          break;
        case Op::kRegisterEvent:
          session->pcc().events().Register(op.name, op.probability);
          break;
        case Op::kRegisterReach:
          queries.push_back(
              inc->RegisterReachability(0, op.source, op.target));
          break;
        case Op::kPublish:
          break;
      }
    }
  }
};

/// Registered-query probabilities of a recovered session must be
/// bit-identical to the oracle's.
void ExpectMatchesOracle(DurableSession& durable, Oracle& oracle,
                         const std::string& context) {
  for (incremental::QueryId q : oracle.queries) {
    const EngineResult want = oracle.inc->Probability(q);
    const EngineResult got = durable.Probability(q);
    ASSERT_EQ(got.status, EngineStatus::kOk) << context;
    EXPECT_EQ(got.value, want.value) << context << " query " << q;
  }
}

TEST(DurableSessionTest, CreateRecoverRoundTrip) {
  const std::string dir = FreshDir("roundtrip");
  const std::vector<Op> ops = ScriptedOps();

  incremental::EpochManager epochs;
  std::unique_ptr<DurableSession> durable;
  ASSERT_EQ(DurableSession::Create(dir, EdgeSchema(), PersistOptions{},
                                   &durable),
            EngineStatus::kOk);
  ApplyToDurable(*durable, ops, ops.size(), &epochs);
  ASSERT_EQ(durable->Sync(), EngineStatus::kOk);
  const uint64_t lsn = durable->next_lsn();
  durable.reset();

  Oracle oracle(EdgeSchema());
  oracle.Apply(ops, ops.size());

  RecoveryStats stats;
  std::unique_ptr<DurableSession> recovered;
  ASSERT_EQ(DurableSession::Recover(dir, PersistOptions{}, &recovered,
                                    &stats),
            EngineStatus::kOk);
  EXPECT_TRUE(stats.loaded_checkpoint);
  EXPECT_EQ(stats.records_replayed, ops.size());
  EXPECT_EQ(stats.epoch_markers, 2u);
  EXPECT_EQ(recovered->next_lsn(), lsn);
  ExpectMatchesOracle(*recovered, oracle, "after recover");
  fs::remove_all(dir);
}

TEST(DurableSessionTest, RecoverTwiceIsIdempotent) {
  const std::string dir = FreshDir("twice");
  const std::vector<Op> ops = ScriptedOps();

  incremental::EpochManager epochs;
  std::unique_ptr<DurableSession> durable;
  ASSERT_EQ(DurableSession::Create(dir, EdgeSchema(), PersistOptions{},
                                   &durable),
            EngineStatus::kOk);
  ApplyToDurable(*durable, ops, ops.size(), &epochs);
  ASSERT_EQ(durable->Sync(), EngineStatus::kOk);
  durable.reset();

  Oracle oracle(EdgeSchema());
  oracle.Apply(ops, ops.size());

  for (int round = 0; round < 2; ++round) {
    std::unique_ptr<DurableSession> recovered;
    ASSERT_EQ(DurableSession::Recover(dir, PersistOptions{}, &recovered,
                                      nullptr),
              EngineStatus::kOk)
        << "round " << round;
    ExpectMatchesOracle(*recovered, oracle,
                        "round " + std::to_string(round));
    // Destroying without mutating must leave the directory recoverable
    // again — recovery is a read-plus-truncate, not a consuming replay.
    recovered.reset();
  }
  fs::remove_all(dir);
}

TEST(DurableSessionTest, WalTailDuplicatingCheckpointIsSkippedByWatermark) {
  const std::string dir = FreshDir("dup_tail");
  const std::vector<Op> ops = ScriptedOps();

  // With rotation off, the single WAL keeps every record from LSN 0; a
  // mid-script checkpoint's watermark must make replay skip the
  // already-checkpointed head rather than apply it twice.
  PersistOptions options;
  options.truncate_wal_on_checkpoint = false;

  incremental::EpochManager epochs;
  std::unique_ptr<DurableSession> durable;
  ASSERT_EQ(DurableSession::Create(dir, EdgeSchema(), options, &durable),
            EngineStatus::kOk);
  ApplyToDurable(*durable, ops, 9, &epochs);
  ASSERT_EQ(durable->Checkpoint(), EngineStatus::kOk);
  {
    // Apply the tail. ApplyToDurable re-counts inserts from zero, so
    // apply ops[9..) by hand through the same mapping.
    std::vector<incremental::InsertedFact> inserted;
    for (size_t i = 0; i < 9; ++i) {
      if (ops[i].kind == Op::kInsert) {
        incremental::InsertedFact f;
        f.fact = static_cast<FactId>(inserted.size());
        inserted.push_back(f);
      }
    }
    // Rebuild the true fact ids from the session (inserts are the only
    // fact sources and allocate ids in order).
    for (size_t i = 0; i < inserted.size(); ++i)
      inserted[i].fact = static_cast<FactId>(i);
    for (size_t i = 9; i < ops.size(); ++i) {
      const Op& op = ops[i];
      switch (op.kind) {
        case Op::kInsert: {
          incremental::InsertedFact out;
          ASSERT_EQ(durable->InsertFact(0, op.args, op.probability, &out),
                    EngineStatus::kOk);
          inserted.push_back(out);
          break;
        }
        case Op::kDelete:
          ASSERT_EQ(durable->DeleteFact(inserted[op.insert_index].fact),
                    EngineStatus::kOk);
          break;
        case Op::kUpdateProb:
          ASSERT_EQ(durable->UpdateProbability(op.event, op.probability),
                    EngineStatus::kOk);
          break;
        case Op::kSetProb:
          ASSERT_EQ(durable->SetProbability(op.event, op.probability),
                    EngineStatus::kOk);
          break;
        case Op::kRegisterEvent:
          ASSERT_EQ(durable->RegisterEvent(op.name, op.probability),
                    EngineStatus::kOk);
          break;
        case Op::kRegisterReach:
          ASSERT_EQ(durable->RegisterReachability(0, op.source, op.target),
                    EngineStatus::kOk);
          break;
        case Op::kPublish:
          ASSERT_EQ(durable->PublishSnapshot(epochs), EngineStatus::kOk);
          break;
      }
    }
  }
  ASSERT_EQ(durable->Sync(), EngineStatus::kOk);
  durable.reset();

  Oracle oracle(EdgeSchema());
  oracle.Apply(ops, ops.size());

  RecoveryStats stats;
  std::unique_ptr<DurableSession> recovered;
  ASSERT_EQ(DurableSession::Recover(dir, options, &recovered, &stats),
            EngineStatus::kOk);
  // The checkpointed head was present in the log and skipped.
  EXPECT_EQ(stats.records_skipped, 9u);
  EXPECT_EQ(stats.records_replayed, ops.size() - 9);
  ExpectMatchesOracle(*recovered, oracle, "duplicate tail");
  fs::remove_all(dir);
}

TEST(DurableSessionTest, RejectedMutationsLeaveNoWalRecord) {
  const std::string dir = FreshDir("validate");
  std::unique_ptr<DurableSession> durable;
  ASSERT_EQ(DurableSession::Create(dir, EdgeSchema(), PersistOptions{},
                                   &durable),
            EngineStatus::kOk);
  ASSERT_EQ(durable->InsertFact(0, {0, 1}, 0.5), EngineStatus::kOk);
  ASSERT_EQ(durable->RegisterEvent("ok", 0.5), EngineStatus::kOk);
  const uint64_t lsn = durable->next_lsn();

  // Every rejection below must change neither the state nor the log.
  EXPECT_EQ(durable->InsertFact(9, {0, 1}, 0.5),
            EngineStatus::kInvalidArgument);  // Unknown relation.
  EXPECT_EQ(durable->InsertFact(0, {0, 1, 2}, 0.5),
            EngineStatus::kInvalidArgument);  // Arity mismatch.
  EXPECT_EQ(durable->InsertFact(0, {0, 1}, 1.5),
            EngineStatus::kInvalidArgument);  // Probability range.
  EXPECT_EQ(durable->RegisterEvent("ok", 0.5),
            EngineStatus::kInvalidArgument);  // Duplicate name.
  EXPECT_EQ(durable->RegisterEvent("", 0.5),
            EngineStatus::kInvalidArgument);  // Empty name.
  EXPECT_EQ(durable->RegisterEvent("_e7", 0.5),
            EngineStatus::kInvalidArgument);  // Reserved prefix.
  EXPECT_EQ(durable->UpdateProbability(1000, 0.5),
            EngineStatus::kInvalidArgument);  // Unknown event.
  EXPECT_EQ(durable->SetProbability(0, -0.5),
            EngineStatus::kInvalidArgument);  // Probability range.
  EXPECT_EQ(durable->DeleteFact(1000),
            EngineStatus::kInvalidArgument);  // Unknown fact.
  EXPECT_EQ(durable->RegisterReachability(9, 0, 1),
            EngineStatus::kInvalidArgument);  // Unknown relation.
  EXPECT_EQ(durable->next_lsn(), lsn);

  // And the directory still recovers to exactly the accepted prefix.
  durable.reset();
  std::unique_ptr<DurableSession> recovered;
  RecoveryStats stats;
  ASSERT_EQ(DurableSession::Recover(dir, PersistOptions{}, &recovered,
                                    &stats),
            EngineStatus::kOk);
  EXPECT_EQ(stats.records_replayed, 2u);
  fs::remove_all(dir);
}

TEST(DurableSessionTest, CreateRefusesOccupiedDirectory) {
  const std::string dir = FreshDir("occupied");
  std::unique_ptr<DurableSession> first;
  ASSERT_EQ(DurableSession::Create(dir, EdgeSchema(), PersistOptions{},
                                   &first),
            EngineStatus::kOk);
  first.reset();
  std::unique_ptr<DurableSession> second;
  EXPECT_EQ(DurableSession::Create(dir, EdgeSchema(), PersistOptions{},
                                   &second),
            EngineStatus::kInvalidArgument);
  fs::remove_all(dir);
}

TEST(DurableSessionTest, CorruptCheckpointFallsBackToOlderOne) {
  const std::string dir = FreshDir("ckpt_fallback");
  const std::vector<Op> ops = ScriptedOps();

  // Keep the full log so the older checkpoint retains coverage.
  PersistOptions options;
  options.truncate_wal_on_checkpoint = false;

  incremental::EpochManager epochs;
  std::unique_ptr<DurableSession> durable;
  ASSERT_EQ(DurableSession::Create(dir, EdgeSchema(), options, &durable),
            EngineStatus::kOk);
  ApplyToDurable(*durable, ops, ops.size(), &epochs);
  ASSERT_EQ(durable->Checkpoint(), EngineStatus::kOk);
  const uint64_t seq = durable->checkpoint_seq();
  ASSERT_EQ(durable->Sync(), EngineStatus::kOk);
  durable.reset();

  // Corrupt the newest checkpoint's payload.
  {
    const std::string path =
        dir + "/checkpoint-" + std::to_string(seq) + ".ckpt";
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(24 + 10);
    char byte = 0;
    f.seekg(24 + 10);
    f.read(&byte, 1);
    byte ^= 0x01;
    f.seekp(24 + 10);
    f.write(&byte, 1);
  }

  Oracle oracle(EdgeSchema());
  oracle.Apply(ops, ops.size());

  RecoveryStats stats;
  std::unique_ptr<DurableSession> recovered;
  ASSERT_EQ(DurableSession::Recover(dir, options, &recovered, &stats),
            EngineStatus::kOk);
  EXPECT_EQ(stats.checkpoints_skipped, 1u);
  EXPECT_LT(stats.checkpoint_seq, seq);
  EXPECT_EQ(stats.records_replayed, ops.size());
  ExpectMatchesOracle(*recovered, oracle, "checkpoint fallback");
  fs::remove_all(dir);
}

TEST(DurableSessionTest, RandomizedStreamMatchesOracle) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const std::string dir =
        FreshDir("random_" + std::to_string(seed));
    incremental::EpochManager epochs;
    PersistOptions options;
    options.checkpoint_every = 16;  // Exercise auto-checkpoints too.
    std::unique_ptr<DurableSession> durable;
    ASSERT_EQ(DurableSession::Create(dir, EdgeSchema(), options, &durable),
              EngineStatus::kOk);
    Oracle oracle(EdgeSchema());

    Rng rng(seed * 1013);
    // Seed chain + query, mirrored to the oracle.
    std::vector<incremental::InsertedFact> durable_facts;
    for (Value v = 0; v < 5; ++v) {
      incremental::InsertedFact out;
      ASSERT_EQ(durable->InsertFact(0, {v, v + 1}, 0.5, &out),
                EngineStatus::kOk);
      durable_facts.push_back(out);
      oracle.inserted.push_back(oracle.inc->InsertFact(0, {v, v + 1}, 0.5));
    }
    ASSERT_EQ(durable->RegisterReachability(0, 0, 5), EngineStatus::kOk);
    oracle.queries.push_back(oracle.inc->RegisterReachability(0, 0, 5));

    Value next_vertex = 6;
    for (int round = 0; round < 40; ++round) {
      const double pick = rng.UniformDouble();
      if (pick < 0.45) {
        const EventId e = static_cast<EventId>(
            rng.UniformDouble() *
            static_cast<double>(oracle.session->pcc().events().size()));
        const double p = rng.UniformDouble();
        ASSERT_EQ(durable->UpdateProbability(e, p), EngineStatus::kOk);
        oracle.inc->UpdateProbability(e, p);
      } else if (pick < 0.75 || durable_facts.empty()) {
        std::vector<Value> args;
        if (rng.UniformDouble() < 0.5) {
          const Value base =
              static_cast<Value>(rng.UniformDouble() * 4.0);
          args = {base, base + 2};
        } else {
          const Value anchor =
              static_cast<Value>(rng.UniformDouble() * 5.0);
          args = {anchor, next_vertex++};
        }
        const double p = 0.2 + 0.6 * rng.UniformDouble();
        incremental::InsertedFact out;
        ASSERT_EQ(durable->InsertFact(0, args, p, &out), EngineStatus::kOk);
        durable_facts.push_back(out);
        oracle.inserted.push_back(oracle.inc->InsertFact(0, args, p));
      } else {
        const size_t pos = static_cast<size_t>(
            rng.UniformDouble() * static_cast<double>(durable_facts.size()));
        ASSERT_EQ(durable->DeleteFact(durable_facts[pos].fact),
                  EngineStatus::kOk);
        oracle.inc->DeleteFact(durable_facts[pos].fact);
        durable_facts.erase(durable_facts.begin() + pos);
      }
      if (round % 10 == 9) {
        ASSERT_EQ(durable->PublishSnapshot(epochs), EngineStatus::kOk);
      }
    }
    EXPECT_EQ(durable->failed_auto_checkpoints(), 0u);
    EXPECT_GT(durable->checkpoint_seq(), 0u);
    ASSERT_EQ(durable->Sync(), EngineStatus::kOk);
    durable.reset();

    std::unique_ptr<DurableSession> recovered;
    ASSERT_EQ(DurableSession::Recover(dir, options, &recovered, nullptr),
              EngineStatus::kOk)
        << "seed " << seed;
    ExpectMatchesOracle(*recovered, oracle,
                        "seed " + std::to_string(seed));
    fs::remove_all(dir);
  }
}

// ---------------------------------------------------------------------------
// Checkpoint file format
// ---------------------------------------------------------------------------

TEST(CheckpointTest, DetectsTruncationAndBitFlips) {
  const std::string dir = FreshDir("ckpt_bits");
  fs::create_directories(dir);
  const std::string path = dir + "/checkpoint-1.ckpt";

  CheckpointState state;
  state.seq = 1;
  state.wal_lsn = 7;
  state.schema.AddRelation("E", 2);
  state.events.emplace_back("a", 0.25);
  state.events.emplace_back("b", 0.75);
  ASSERT_EQ(WriteCheckpoint(path, state), EngineStatus::kOk);

  CheckpointState loaded;
  ASSERT_EQ(ReadCheckpoint(path, &loaded), EngineStatus::kOk);
  EXPECT_EQ(loaded.seq, 1u);
  EXPECT_EQ(loaded.wal_lsn, 7u);
  ASSERT_EQ(loaded.events.size(), 2u);
  EXPECT_EQ(loaded.events[1].first, "b");
  EXPECT_EQ(loaded.events[1].second, 0.75);

  const uint64_t size = fs::file_size(path);
  // Truncations at every offset: all must fail typed.
  for (uint64_t cut = 1; cut < size; cut += 5) {
    fs::resize_file(path, size - cut);
    EXPECT_EQ(ReadCheckpoint(path, &loaded), EngineStatus::kIoError)
        << "cut " << cut;
    ASSERT_EQ(WriteCheckpoint(path, state), EngineStatus::kOk);
  }
  // Bit flips across the payload: all must fail typed.
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  for (size_t bit = 0; bit < bytes.size() * 8; bit += 53) {
    std::vector<char> flipped = bytes;
    flipped[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    std::ofstream outf(path, std::ios::binary | std::ios::trunc);
    outf.write(flipped.data(), static_cast<std::streamsize>(flipped.size()));
    outf.close();
    EXPECT_EQ(ReadCheckpoint(path, &loaded), EngineStatus::kIoError)
        << "bit " << bit;
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// EngineStatus coverage
// ---------------------------------------------------------------------------

TEST(EngineStatusTest, IoErrorHasAName) {
  EXPECT_STREQ(EngineStatusName(EngineStatus::kIoError), "io_error");
}

}  // namespace
}  // namespace persist
}  // namespace tud
