#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "order/partial_order.h"
#include "order/po_relation.h"
#include "util/rng.h"

namespace tud {
namespace {

TEST(PartialOrderTest, ConstraintsAndClosure) {
  PartialOrder order(4);
  EXPECT_TRUE(order.AddConstraint(0, 1));
  EXPECT_TRUE(order.AddConstraint(1, 2));
  EXPECT_TRUE(order.Precedes(0, 2));  // Transitivity.
  EXPECT_FALSE(order.Precedes(2, 0));
  EXPECT_TRUE(order.Incomparable(0, 3));
  EXPECT_FALSE(order.AddConstraint(2, 0));  // Would create a cycle.
  EXPECT_TRUE(order.AddConstraint(0, 2));   // Already implied: fine.
}

TEST(PartialOrderTest, CoverEdgesAreTransitiveReduction) {
  PartialOrder order(3);
  order.AddConstraint(0, 1);
  order.AddConstraint(1, 2);
  order.AddConstraint(0, 2);  // Implied.
  auto covers = order.CoverEdges();
  EXPECT_EQ(covers, (std::vector<std::pair<OrderElem, OrderElem>>{{0, 1},
                                                                  {1, 2}}));
}

TEST(PartialOrderTest, CountLinearExtensionsKnownValues) {
  EXPECT_EQ(PartialOrder::Antichain(0).CountLinearExtensions(), 1u);
  EXPECT_EQ(PartialOrder::Antichain(4).CountLinearExtensions(), 24u);
  EXPECT_EQ(PartialOrder::Chain(5).CountLinearExtensions(), 1u);
  // Two independent chains of length 2: C(4,2) = 6 interleavings.
  PartialOrder two_chains(4);
  two_chains.AddConstraint(0, 1);
  two_chains.AddConstraint(2, 3);
  EXPECT_EQ(two_chains.CountLinearExtensions(), 6u);
  // V-shape: 0 < 1, 0 < 2: extensions 012, 021.
  PartialOrder vee(3);
  vee.AddConstraint(0, 1);
  vee.AddConstraint(0, 2);
  EXPECT_EQ(vee.CountLinearExtensions(), 2u);
}

TEST(PartialOrderTest, EnumerationConsistentWithCounting) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    PartialOrder order(6);
    for (int e = 0; e < 5; ++e) {
      OrderElem a = static_cast<OrderElem>(rng.UniformInt(6));
      OrderElem b = static_cast<OrderElem>(rng.UniformInt(6));
      if (a != b) order.AddConstraint(a, b);
    }
    std::set<std::vector<OrderElem>> seen;
    size_t produced = order.EnumerateLinearExtensions(
        [&](const std::vector<OrderElem>& ext) {
          EXPECT_TRUE(order.IsLinearExtension(ext));
          seen.insert(ext);
        });
    EXPECT_EQ(produced, order.CountLinearExtensions());
    EXPECT_EQ(seen.size(), produced);  // All distinct.
  }
}

TEST(PartialOrderTest, EnumerationLimit) {
  PartialOrder order = PartialOrder::Antichain(5);
  size_t produced = order.EnumerateLinearExtensions(
      [](const std::vector<OrderElem>&) {}, 7);
  EXPECT_EQ(produced, 7u);
}

TEST(PartialOrderTest, IsLinearExtensionRejectsBadSequences) {
  PartialOrder order = PartialOrder::Chain(3);
  EXPECT_TRUE(order.IsLinearExtension({0, 1, 2}));
  EXPECT_FALSE(order.IsLinearExtension({1, 0, 2}));   // Violates 0<1.
  EXPECT_FALSE(order.IsLinearExtension({0, 1}));      // Too short.
  EXPECT_FALSE(order.IsLinearExtension({0, 0, 2}));   // Repeats.
}

TEST(PartialOrderTest, InducedSuborder) {
  PartialOrder order = PartialOrder::Chain(4);
  PartialOrder sub = order.Induced({0, 2});
  EXPECT_TRUE(sub.Precedes(0, 1));  // 0 < 2 in the original.
  EXPECT_EQ(sub.size(), 2u);
}

TEST(PartialOrderTest, AddElementGrows) {
  PartialOrder order(2);
  order.AddConstraint(0, 1);
  OrderElem c = order.AddElement();
  EXPECT_EQ(order.size(), 3u);
  EXPECT_TRUE(order.Incomparable(c, 0));
  EXPECT_TRUE(order.AddConstraint(1, c));
  EXPECT_TRUE(order.Precedes(0, c));
}

// ---------------------------------------------------------------------------
// PoRelation: algebra and possible-world reasoning.
// ---------------------------------------------------------------------------

TEST(PoRelationTest, FromListIsTotallyOrdered) {
  PoRelation r = PoRelation::FromList(1, {{10}, {20}, {30}});
  EXPECT_EQ(r.CountWorlds(), 1u);
  EXPECT_TRUE(r.CertainlyPrecedes(0, 1));
  EXPECT_TRUE(r.order().IsTotal());
}

TEST(PoRelationTest, FromBagIsUnordered) {
  PoRelation r = PoRelation::FromBag(1, {{10}, {20}, {30}});
  EXPECT_EQ(r.CountWorlds(), 6u);
  EXPECT_TRUE(r.order().IsEmptyOrder());
  EXPECT_TRUE(r.PossiblyPrecedes(0, 1));
  EXPECT_FALSE(r.CertainlyPrecedes(0, 1));
}

TEST(PoRelationTest, UnionParallelInterleaves) {
  // Integrating two ordered lists with an unknown global order (the log
  // integration scenario of §3): worlds = interleavings.
  PoRelation a = PoRelation::FromList(1, {{1}, {2}});
  PoRelation b = PoRelation::FromList(1, {{3}, {4}});
  PoRelation merged = PoRelation::UnionParallel(a, b);
  EXPECT_EQ(merged.CountWorlds(), 6u);  // C(4,2).
  // Order within each source is preserved.
  EXPECT_TRUE(merged.CertainlyPrecedes(0, 1));
  EXPECT_TRUE(merged.CertainlyPrecedes(2, 3));
  EXPECT_TRUE(merged.PossiblyPrecedes(2, 0));
}

TEST(PoRelationTest, ConcatenateKeepsSidesSeparated) {
  PoRelation a = PoRelation::FromList(1, {{1}, {2}});
  PoRelation b = PoRelation::FromBag(1, {{3}, {4}});
  PoRelation cat = PoRelation::Concatenate(a, b);
  EXPECT_EQ(cat.CountWorlds(), 2u);  // Only b's pair is free.
  EXPECT_TRUE(cat.CertainlyPrecedes(1, 2));
  EXPECT_TRUE(cat.CertainlyPrecedes(0, 3));
}

TEST(PoRelationTest, SelectInducesOrder) {
  PoRelation r = PoRelation::FromList(1, {{5}, {10}, {15}});
  PoRelation selected =
      r.Select([](const PoTuple& t) { return t[0] >= 10; });
  EXPECT_EQ(selected.NumTuples(), 2u);
  EXPECT_TRUE(selected.CertainlyPrecedes(0, 1));  // 10 before 15.
  EXPECT_EQ(selected.CountWorlds(), 1u);
}

TEST(PoRelationTest, ProjectKeepsOrderAndDuplicates) {
  PoRelation r = PoRelation::FromList(2, {{1, 7}, {2, 7}});
  PoRelation p = r.Project({1});
  EXPECT_EQ(p.arity(), 1u);
  EXPECT_EQ(p.NumTuples(), 2u);
  EXPECT_EQ(p.tuple(0), (PoTuple{7}));
  EXPECT_EQ(p.tuple(1), (PoTuple{7}));  // Bag semantics: duplicate kept.
  EXPECT_TRUE(p.CertainlyPrecedes(0, 1));
}

TEST(PoRelationTest, ProductLexOfTwoLists) {
  PoRelation a = PoRelation::FromList(1, {{1}, {2}});
  PoRelation b = PoRelation::FromList(1, {{8}, {9}});
  PoRelation prod = PoRelation::ProductLex(a, b);
  EXPECT_EQ(prod.NumTuples(), 4u);
  // Lex of two totals is total: a unique world (1,8)(1,9)(2,8)(2,9).
  EXPECT_EQ(prod.CountWorlds(), 1u);
  std::vector<std::vector<PoTuple>> worlds;
  prod.EnumerateWorlds(
      [&](const std::vector<PoTuple>& w) { worlds.push_back(w); });
  ASSERT_EQ(worlds.size(), 1u);
  EXPECT_EQ(worlds[0][0], (PoTuple{1, 8}));
  EXPECT_EQ(worlds[0][1], (PoTuple{1, 9}));
  EXPECT_EQ(worlds[0][2], (PoTuple{2, 8}));
  EXPECT_EQ(worlds[0][3], (PoTuple{2, 9}));
}

TEST(PoRelationTest, ProductDirectLeavesTiesOpen) {
  PoRelation a = PoRelation::FromList(1, {{1}, {2}});
  PoRelation b = PoRelation::FromList(1, {{8}, {9}});
  PoRelation prod = PoRelation::ProductDirect(a, b);
  // Direct product of two 2-chains: the 2x2 grid poset, 2 extensions of
  // the middle antichain {(1,9),(2,8)}.
  EXPECT_EQ(prod.CountWorlds(), 2u);
  EXPECT_TRUE(prod.CertainlyPrecedes(0, 3));   // (1,8) < (2,9).
  EXPECT_TRUE(prod.PossiblyPrecedes(1, 2));
  EXPECT_TRUE(prod.PossiblyPrecedes(2, 1));
}

TEST(PoRelationTest, IsPossibleWorldTractableCases) {
  // Unordered: any permutation of the multiset.
  PoRelation bag = PoRelation::FromBag(1, {{1}, {1}, {2}});
  EXPECT_TRUE(bag.IsPossibleWorld({{1}, {2}, {1}}));
  EXPECT_TRUE(bag.IsPossibleWorld({{2}, {1}, {1}}));
  EXPECT_FALSE(bag.IsPossibleWorld({{2}, {2}, {1}}));
  EXPECT_FALSE(bag.IsPossibleWorld({{1}, {2}}));
  // Total: exactly one world.
  PoRelation list = PoRelation::FromList(1, {{1}, {2}, {3}});
  EXPECT_TRUE(list.IsPossibleWorld({{1}, {2}, {3}}));
  EXPECT_FALSE(list.IsPossibleWorld({{2}, {1}, {3}}));
}

TEST(PoRelationTest, IsPossibleWorldGeneralCaseWithDuplicates) {
  // Two occurrences of the same label in different order positions:
  // matching must try both.
  PoRelation r(1);
  OrderElem a = r.AddTuple({7});
  OrderElem b = r.AddTuple({8});
  OrderElem c = r.AddTuple({7});
  r.AddOrderConstraint(a, b);  // 7 < 8; second 7 free.
  (void)c;
  EXPECT_TRUE(r.IsPossibleWorld({{7}, {8}, {7}}));
  EXPECT_TRUE(r.IsPossibleWorld({{7}, {7}, {8}}));
  EXPECT_FALSE(r.IsPossibleWorld({{8}, {7}, {7}}));  // Some 7 before 8.
}

TEST(PoRelationTest, IsPossibleWorldMatchesEnumeration) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    PoRelation r(1);
    const uint32_t n = 5;
    for (uint32_t i = 0; i < n; ++i) {
      r.AddTuple({static_cast<Value>(rng.UniformInt(3))});
    }
    for (int e = 0; e < 4; ++e) {
      OrderElem a = static_cast<OrderElem>(rng.UniformInt(n));
      OrderElem b = static_cast<OrderElem>(rng.UniformInt(n));
      if (a != b) r.AddOrderConstraint(a, b);
    }
    std::set<std::vector<PoTuple>> worlds;
    r.EnumerateWorlds(
        [&](const std::vector<PoTuple>& w) { worlds.insert(w); });
    for (const auto& w : worlds) {
      EXPECT_TRUE(r.IsPossibleWorld(w));
    }
    // A random non-world should be rejected.
    std::vector<PoTuple> shuffled(5, PoTuple{0});
    shuffled[0] = {2};
    shuffled[1] = {2};
    shuffled[2] = {2};
    if (!worlds.contains(shuffled)) {
      EXPECT_FALSE(r.IsPossibleWorld(shuffled));
    }
  }
}

TEST(PoRelationTest, AlgebraComposition) {
  // (union of two logs, then select, then project) keeps a consistent
  // possible-world set: every world of the composed relation restricted
  // is a subsequence-compatible world.
  PoRelation log1 = PoRelation::FromList(2, {{0, 10}, {0, 20}});
  PoRelation log2 = PoRelation::FromList(2, {{1, 15}, {1, 25}});
  PoRelation merged = PoRelation::UnionParallel(log1, log2);
  PoRelation events = merged.Project({1});
  EXPECT_EQ(events.NumTuples(), 4u);
  EXPECT_EQ(events.CountWorlds(), 6u);
  PoRelation late = events.Select(
      [](const PoTuple& t) { return t[0] >= 20; });
  EXPECT_EQ(late.NumTuples(), 2u);
  // 20 and 25 come from different logs: both orders possible.
  EXPECT_EQ(late.CountWorlds(), 2u);
}


TEST(RankDistributionTest, ChainIsDeterministic) {
  PartialOrder chain = PartialOrder::Chain(5);
  for (OrderElem e = 0; e < 5; ++e) {
    std::vector<double> dist = chain.RankDistribution(e);
    for (uint32_t i = 0; i < 5; ++i) {
      EXPECT_NEAR(dist[i], i == e ? 1.0 : 0.0, 1e-12);
    }
    EXPECT_NEAR(chain.ExpectedRank(e), e, 1e-12);
  }
}

TEST(RankDistributionTest, AntichainIsUniform) {
  PartialOrder free = PartialOrder::Antichain(4);
  for (OrderElem e = 0; e < 4; ++e) {
    std::vector<double> dist = free.RankDistribution(e);
    for (double p : dist) EXPECT_NEAR(p, 0.25, 1e-12);
    EXPECT_NEAR(free.ExpectedRank(e), 1.5, 1e-12);
  }
}

TEST(RankDistributionTest, MatchesEnumeration) {
  Rng rng(21);
  for (int trial = 0; trial < 8; ++trial) {
    PartialOrder order(6);
    for (int c = 0; c < 5; ++c) {
      OrderElem a = static_cast<OrderElem>(rng.UniformInt(6));
      OrderElem b = static_cast<OrderElem>(rng.UniformInt(6));
      if (a != b) order.AddConstraint(a, b);
    }
    // Histogram positions by full enumeration.
    std::vector<std::vector<double>> histogram(6,
                                               std::vector<double>(6, 0.0));
    size_t total = order.EnumerateLinearExtensions(
        [&](const std::vector<OrderElem>& ext) {
          for (uint32_t i = 0; i < ext.size(); ++i) {
            histogram[ext[i]][i] += 1.0;
          }
        });
    for (OrderElem e = 0; e < 6; ++e) {
      std::vector<double> dist = order.RankDistribution(e);
      double sum = 0.0;
      for (uint32_t i = 0; i < 6; ++i) {
        EXPECT_NEAR(dist[i], histogram[e][i] / total, 1e-9)
            << "elem " << e << " pos " << i;
        sum += dist[i];
      }
      EXPECT_NEAR(sum, 1.0, 1e-9);
    }
  }
}

TEST(RankDistributionTest, ConstraintsShiftExpectation) {
  // 0 < 1 among 3 elements: 0 skews early, 1 skews late, 2 stays middle.
  PartialOrder order(3);
  order.AddConstraint(0, 1);
  EXPECT_LT(order.ExpectedRank(0), 1.0);
  EXPECT_GT(order.ExpectedRank(1), 1.0);
  EXPECT_NEAR(order.ExpectedRank(2), 1.0, 1e-12);
}


TEST(TopKTest, ChainAndAntichain) {
  PoRelation chain = PoRelation::FromList(1, {{0}, {1}, {2}, {3}});
  EXPECT_TRUE(chain.CertainlyInTopK(0, 1));
  EXPECT_FALSE(chain.CertainlyInTopK(1, 1));
  EXPECT_TRUE(chain.CertainlyInTopK(1, 2));
  EXPECT_FALSE(chain.PossiblyInTopK(3, 3));
  EXPECT_TRUE(chain.PossiblyInTopK(3, 4));

  PoRelation bag = PoRelation::FromBag(1, {{0}, {1}, {2}});
  for (OrderElem t = 0; t < 3; ++t) {
    EXPECT_TRUE(bag.PossiblyInTopK(t, 1));
    EXPECT_FALSE(bag.CertainlyInTopK(t, 2));
    EXPECT_TRUE(bag.CertainlyInTopK(t, 3));
  }
}

TEST(TopKTest, MatchesEnumeration) {
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    PoRelation r(1);
    const uint32_t n = 5;
    for (uint32_t i = 0; i < n; ++i) r.AddTuple({i});
    for (int c = 0; c < 4; ++c) {
      OrderElem a = static_cast<OrderElem>(rng.UniformInt(n));
      OrderElem b = static_cast<OrderElem>(rng.UniformInt(n));
      if (a != b) r.AddOrderConstraint(a, b);
    }
    for (uint32_t k = 1; k <= n; ++k) {
      for (OrderElem t = 0; t < n; ++t) {
        bool in_all = true, in_some = false;
        r.order().EnumerateLinearExtensions(
            [&](const std::vector<OrderElem>& ext) {
              bool in_top = false;
              for (uint32_t i = 0; i < k; ++i) {
                if (ext[i] == t) in_top = true;
              }
              in_all = in_all && in_top;
              in_some = in_some || in_top;
            });
        EXPECT_EQ(r.CertainlyInTopK(t, k), in_all) << t << " " << k;
        EXPECT_EQ(r.PossiblyInTopK(t, k), in_some) << t << " " << k;
      }
    }
  }
}

}  // namespace
}  // namespace tud
