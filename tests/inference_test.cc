#include <cmath>

#include "bdd/bdd.h"
#include "circuits/bool_circuit.h"
#include "gtest/gtest.h"
#include "inference/conditioning.h"
#include "inference/crowd.h"
#include "inference/exhaustive.h"
#include "inference/hybrid.h"
#include "inference/junction_tree.h"
#include "inference/sampling.h"
#include "util/rng.h"

namespace tud {
namespace {

BoolCircuit RandomCircuit(Rng& rng, uint32_t num_events, uint32_t num_gates,
                          GateId* root) {
  BoolCircuit c;
  std::vector<GateId> pool;
  for (EventId e = 0; e < num_events; ++e) pool.push_back(c.AddVar(e));
  for (uint32_t i = 0; i < num_gates; ++i) {
    GateId a = pool[rng.UniformInt(pool.size())];
    GateId b = pool[rng.UniformInt(pool.size())];
    switch (rng.UniformInt(3)) {
      case 0:
        pool.push_back(c.AddNot(a));
        break;
      case 1:
        pool.push_back(c.AddAnd(a, b));
        break;
      default:
        pool.push_back(c.AddOr(a, b));
        break;
    }
  }
  *root = pool.back();
  return c;
}

EventRegistry RandomRegistry(Rng& rng, uint32_t num_events) {
  EventRegistry registry;
  for (uint32_t i = 0; i < num_events; ++i) {
    registry.Register("e" + std::to_string(i),
                      0.05 + 0.9 * rng.UniformDouble());
  }
  return registry;
}

TEST(ExhaustiveTest, SimpleCircuits) {
  EventRegistry registry;
  registry.Register("a", 0.5);
  registry.Register("b", 0.25);
  BoolCircuit c;
  GateId a = c.AddVar(0);
  GateId b = c.AddVar(1);
  EXPECT_NEAR(ExhaustiveProbability(c, c.AddAnd(a, b), registry), 0.125,
              1e-12);
  EXPECT_NEAR(ExhaustiveProbability(c, c.AddOr(a, b), registry), 0.625,
              1e-12);
  EXPECT_NEAR(ExhaustiveProbability(c, c.AddConst(true), registry), 1.0,
              1e-12);
  EXPECT_NEAR(ExhaustiveProbability(c, c.AddConst(false), registry), 0.0,
              1e-12);
}

TEST(JunctionTreeTest, ConstantAndSingleVar) {
  EventRegistry registry;
  registry.Register("a", 0.3);
  BoolCircuit c;
  EXPECT_NEAR(JunctionTreeProbability(c, c.AddConst(true), registry), 1.0,
              1e-12);
  EXPECT_NEAR(JunctionTreeProbability(c, c.AddVar(0), registry), 0.3, 1e-12);
  EXPECT_NEAR(JunctionTreeProbability(c, c.AddNot(c.AddVar(0)), registry),
              0.7, 1e-12);
}

// The core cross-validation invariant: the three exact engines agree.
class ExactEnginesAgreeTest : public ::testing::TestWithParam<int> {};

TEST_P(ExactEnginesAgreeTest, ExhaustiveVsJunctionTreeVsBdd) {
  Rng rng(GetParam());
  const uint32_t kEvents = 7;
  GateId root;
  BoolCircuit c = RandomCircuit(rng, kEvents, 35, &root);
  EventRegistry registry = RandomRegistry(rng, kEvents);

  double exhaustive = ExhaustiveProbability(c, root, registry);
  double message_passing = JunctionTreeProbability(c, root, registry);
  EXPECT_NEAR(message_passing, exhaustive, 1e-9);

  BddManager mgr(kEvents);
  std::vector<uint32_t> levels(kEvents);
  std::vector<double> probs(kEvents);
  for (uint32_t i = 0; i < kEvents; ++i) {
    levels[i] = i;
    probs[i] = registry.probability(i);
  }
  double bdd = mgr.Wmc(mgr.FromCircuit(c, root, levels), probs);
  EXPECT_NEAR(bdd, exhaustive, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactEnginesAgreeTest,
                         ::testing::Range(0, 40));

TEST(JunctionTreeTest, StatsPopulated) {
  Rng rng(1);
  GateId root;
  BoolCircuit c = RandomCircuit(rng, 6, 20, &root);
  EventRegistry registry = RandomRegistry(rng, 6);
  EngineStats stats;
  JunctionTreeProbability(c, root, registry, &stats);
  EXPECT_GE(stats.width, 0);
  EXPECT_GT(stats.num_bags, 0u);
  EXPECT_GT(stats.num_gates, 0u);
}

TEST(JunctionTreeTest, EvidencePinsEvents) {
  EventRegistry registry;
  registry.Register("a", 0.3);
  registry.Register("b", 0.6);
  BoolCircuit c;
  GateId g = c.AddAnd(c.AddVar(0), c.AddVar(1));
  // P(a & b | a=true) = P(b) = 0.6.
  EXPECT_NEAR(
      JunctionTreeProbabilityWithEvidence(c, g, registry, {{0, true}}), 0.6,
      1e-12);
  EXPECT_NEAR(
      JunctionTreeProbabilityWithEvidence(c, g, registry, {{0, false}}), 0.0,
      1e-12);
  EXPECT_NEAR(JunctionTreeProbabilityWithEvidence(c, g, registry,
                                                  {{0, true}, {1, true}}),
              1.0, 1e-12);
}

TEST(SamplingTest, ConvergesOnSimpleCircuit) {
  EventRegistry registry;
  registry.Register("a", 0.4);
  registry.Register("b", 0.5);
  BoolCircuit c;
  GateId g = c.AddOr(c.AddVar(0), c.AddVar(1));
  Rng rng(7);
  double estimate = SampleProbability(c, g, registry, 40000, rng);
  EXPECT_NEAR(estimate, 0.7, 0.02);
}

class SamplingConvergenceTest : public ::testing::TestWithParam<int> {};

TEST_P(SamplingConvergenceTest, WithinConfidenceBand) {
  Rng rng(GetParam() + 77);
  GateId root;
  BoolCircuit c = RandomCircuit(rng, 6, 25, &root);
  EventRegistry registry = RandomRegistry(rng, 6);
  double exact = ExhaustiveProbability(c, root, registry);
  Rng sample_rng(GetParam());
  double estimate = SampleProbability(c, root, registry, 20000, sample_rng);
  // 5 sigma band for Bernoulli(0.5) worst case.
  EXPECT_NEAR(estimate, exact, 5 * 0.5 / std::sqrt(20000.0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplingConvergenceTest,
                         ::testing::Range(0, 10));

TEST(ConditioningTest, ConditionalProbabilityDefinition) {
  EventRegistry registry;
  registry.Register("a", 0.5);
  registry.Register("b", 0.5);
  BoolCircuit c;
  GateId a = c.AddVar(0);
  GateId b = c.AddVar(1);
  GateId q = c.AddAnd(a, b);
  // P(a & b | a) = 0.5; P(a & b | a or b) = 0.25 / 0.75.
  auto p1 = ConditionalProbability(c, q, a, registry);
  ASSERT_TRUE(p1.has_value());
  EXPECT_NEAR(*p1, 0.5, 1e-12);
  GateId obs = c.AddOr(a, b);
  auto p2 = ConditionalProbability(c, q, obs, registry);
  ASSERT_TRUE(p2.has_value());
  EXPECT_NEAR(*p2, 0.25 / 0.75, 1e-12);
  // Conditioning on an impossible observation.
  GateId never = c.AddAnd(a, c.AddNot(a));
  EXPECT_FALSE(ConditionalProbability(c, q, never, registry).has_value());
}

TEST(ConditioningTest, MaterialisedEventConditioningMatchesRatio) {
  // Condition the Table-1-style instance on pods=true two ways: by
  // materialisation and by ratio; world distributions must agree.
  Schema schema;
  schema.AddRelation("Trip", 2);
  CInstance ci(schema);
  EventId pods = ci.events().Register("pods", 0.3);
  EventId stoc = ci.events().Register("stoc", 0.8);
  ci.AddFact(0, {0, 1}, BoolFormula::Var(pods));
  ci.AddFact(0, {1, 2},
             BoolFormula::And(BoolFormula::Var(pods),
                              BoolFormula::Not(BoolFormula::Var(stoc))));
  CInstance conditioned = ConditionOnEventLiteral(ci, pods, true);
  EXPECT_DOUBLE_EQ(conditioned.events().probability(pods), 1.0);
  // Fact 0's annotation became constant true.
  EXPECT_TRUE(conditioned.IsCertain(0));
  // Fact 1 now depends only on stoc: P = 1 - 0.8.
  BoolCircuit c;
  GateId g = c.AddFormula(conditioned.annotation(1));
  EXPECT_NEAR(JunctionTreeProbability(c, g, conditioned.events()), 0.2,
              1e-12);
}

TEST(ConditioningTest, SubstituteEventHandlesAllShapes) {
  EventRegistry registry;
  EventId a = registry.Register("a", 0.5);
  EventId b = registry.Register("b", 0.5);
  auto f = BoolFormula::Parse("(a & b) | !a", registry);
  ASSERT_TRUE(f.has_value());
  BoolFormula t = SubstituteEvent(*f, a, true);
  BoolFormula fl = SubstituteEvent(*f, a, false);
  for (uint64_t mask = 0; mask < 4; ++mask) {
    Valuation v = Valuation::FromMask(mask, 2);
    Valuation vt = v, vf = v;
    vt.set_value(a, true);
    vf.set_value(a, false);
    EXPECT_EQ(t.Evaluate(v), f->Evaluate(vt));
    EXPECT_EQ(fl.Evaluate(v), f->Evaluate(vf));
  }
  (void)b;
}

TEST(ConditioningTest, BinaryEntropy) {
  EXPECT_DOUBLE_EQ(BinaryEntropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(BinaryEntropy(1.0), 0.0);
  EXPECT_DOUBLE_EQ(BinaryEntropy(0.5), 1.0);
  EXPECT_GT(BinaryEntropy(0.5), BinaryEntropy(0.1));
}

TEST(ConditioningTest, QuestionSelectionPrefersInformativeEvent) {
  // Query = a; candidate questions: a (fully informative) vs c
  // (irrelevant). Asking a must win.
  EventRegistry registry;
  EventId a = registry.Register("a", 0.5);
  EventId c_ev = registry.Register("c", 0.5);
  BoolCircuit c;
  GateId q = c.AddVar(a);
  auto choice = SelectBestQuestion(c, q, registry, {a, c_ev});
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->event, a);
  EXPECT_NEAR(choice->expected_entropy, 0.0, 1e-12);
  EXPECT_NEAR(choice->current_entropy, 1.0, 1e-12);
  EXPECT_FALSE(SelectBestQuestion(c, q, registry, {}).has_value());
}

TEST(HybridTest, RestrictCircuitSubstitutesConstants) {
  BoolCircuit c;
  GateId a = c.AddVar(0);
  GateId b = c.AddVar(1);
  GateId g = c.AddOr(c.AddAnd(a, b), c.AddNot(a));
  std::vector<std::optional<bool>> fixed = {true, std::nullopt};
  auto [restricted, root] = RestrictCircuit(c, g, fixed);
  // With a = true, g reduces to b.
  for (bool bv : {false, true}) {
    Valuation v(2);
    v.set_value(1, bv);
    EXPECT_EQ(restricted.Evaluate(root, v), bv);
  }
}

TEST(HybridTest, ExactWhenCoreEmpty) {
  Rng rng(3);
  GateId root;
  BoolCircuit c = RandomCircuit(rng, 6, 20, &root);
  EventRegistry registry = RandomRegistry(rng, 6);
  Rng sample_rng(1);
  EngineResult result =
      HybridProbability(c, root, registry, {}, 1, sample_rng);
  EXPECT_NEAR(result.value, ExhaustiveProbability(c, root, registry),
              1e-9);
}

class HybridConvergenceTest : public ::testing::TestWithParam<int> {};

TEST_P(HybridConvergenceTest, ConvergesWithSampledCore) {
  Rng rng(GetParam() + 11);
  GateId root;
  BoolCircuit c = RandomCircuit(rng, 8, 30, &root);
  EventRegistry registry = RandomRegistry(rng, 8);
  double exact = ExhaustiveProbability(c, root, registry);
  Rng sample_rng(GetParam());
  EngineResult result =
      HybridProbability(c, root, registry, {0, 1}, 4000, sample_rng);
  EXPECT_NEAR(result.value, exact, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HybridConvergenceTest,
                         ::testing::Range(0, 8));

TEST(HybridTest, SelectCoreEventsReducesWidth) {
  // A "core + tentacles" circuit: a dense parity-ish core over a few
  // events feeding long independent chains.
  BoolCircuit c;
  std::vector<GateId> core_vars;
  for (EventId e = 0; e < 4; ++e) core_vars.push_back(c.AddVar(e));
  // Dense core: pairwise XORs all ANDed together.
  std::vector<GateId> parts;
  for (size_t i = 0; i < core_vars.size(); ++i) {
    for (size_t j = i + 1; j < core_vars.size(); ++j) {
      GateId x = core_vars[i], y = core_vars[j];
      parts.push_back(c.AddOr(c.AddAnd(x, c.AddNot(y)),
                              c.AddAnd(c.AddNot(x), y)));
    }
  }
  GateId core = c.AddAnd(parts);
  GateId chain = core;
  for (EventId e = 4; e < 14; ++e) {
    chain = c.AddOr(chain, c.AddVar(e));
  }
  std::vector<EventId> core_events = SelectCoreEvents(c, chain, 2, 8);
  // Conditioning should pick only core variables (the chain is thin).
  for (EventId e : core_events) EXPECT_LT(e, 4u);
}


TEST(CrowdTest, PosteriorUpdateFormula) {
  // Symmetric channel: prior 0.5, reliability 0.8, answer true:
  // posterior = 0.8*0.5 / (0.8*0.5 + 0.2*0.5) = 0.8.
  EXPECT_NEAR(UpdateEventPosterior(0.5, true, 0.8), 0.8, 1e-12);
  EXPECT_NEAR(UpdateEventPosterior(0.5, false, 0.8), 0.2, 1e-12);
  // A perfectly reliable answer pins the posterior.
  EXPECT_NEAR(UpdateEventPosterior(0.3, true, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(UpdateEventPosterior(0.3, false, 1.0), 0.0, 1e-12);
  // Contradictory answers cancel out.
  double p = 0.5;
  p = UpdateEventPosterior(p, true, 0.8);
  p = UpdateEventPosterior(p, false, 0.8);
  EXPECT_NEAR(p, 0.5, 1e-12);
  // Degenerate priors are absorbing.
  EXPECT_NEAR(UpdateEventPosterior(1.0, false, 0.8), 1.0 * 0.2 / 0.2,
              1e-12);
}

TEST(CrowdTest, RepeatedAsksConcentrateOnTruth) {
  EventRegistry registry;
  EventId e = registry.Register("claim", 0.5);
  Valuation truth(1);
  truth.set_value(e, true);
  NoisyOracle oracle(truth, 0.7, 42);
  double posterior = AskAndUpdate(registry, e, oracle, 60);
  EXPECT_GT(posterior, 0.95);
  EXPECT_EQ(registry.probability(e), posterior);
}

TEST(CrowdTest, UnreliableFalseTruthConverges) {
  EventRegistry registry;
  EventId e = registry.Register("claim", 0.7);  // Prior leans true.
  Valuation truth(1);
  truth.set_value(e, false);
  NoisyOracle oracle(truth, 0.8, 7);
  double posterior = AskAndUpdate(registry, e, oracle, 60);
  EXPECT_LT(posterior, 0.05);  // Evidence overrides the prior.
}

TEST(CrowdTest, NoisyConditioningChangesQueryProbability) {
  // Query = e1 & e2; workers confirm e1 noisily: P(q) rises toward
  // P(e2) but never reaches it with finite evidence.
  EventRegistry registry;
  EventId e1 = registry.Register("e1", 0.5);
  EventId e2 = registry.Register("e2", 0.6);
  BoolCircuit c;
  GateId q = c.AddAnd(c.AddVar(e1), c.AddVar(e2));
  double before = JunctionTreeProbability(c, q, registry);
  EXPECT_NEAR(before, 0.3, 1e-12);
  Valuation truth(2);
  truth.set_value(e1, true);
  truth.set_value(e2, true);
  NoisyOracle oracle(truth, 0.9, 3);
  AskAndUpdate(registry, e1, oracle, 20);
  double after = JunctionTreeProbability(c, q, registry);
  EXPECT_GT(after, 0.55);
  EXPECT_LT(after, 0.6 + 1e-9);
}

TEST(CrowdDeathTest, CoinFlipWorkersRejected) {
  Valuation truth(1);
  EXPECT_DEATH(NoisyOracle(truth, 0.5, 1), "coin flips");
}

}  // namespace
}  // namespace tud
