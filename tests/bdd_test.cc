#include <cmath>

#include "bdd/bdd.h"
#include "gtest/gtest.h"
#include "inference/exhaustive.h"
#include "util/rng.h"

namespace tud {
namespace {

TEST(BddTest, TerminalsAndVar) {
  BddManager mgr(3);
  EXPECT_EQ(mgr.NumNodes(), 2u);
  BddRef x = mgr.Var(0);
  EXPECT_FALSE(mgr.Evaluate(x, {false, false, false}));
  EXPECT_TRUE(mgr.Evaluate(x, {true, false, false}));
}

TEST(BddTest, BooleanOperations) {
  BddManager mgr(2);
  BddRef x = mgr.Var(0);
  BddRef y = mgr.Var(1);
  BddRef conj = mgr.And(x, y);
  BddRef disj = mgr.Or(x, y);
  BddRef neg = mgr.Not(x);
  for (bool a : {false, true}) {
    for (bool b : {false, true}) {
      std::vector<bool> v = {a, b};
      EXPECT_EQ(mgr.Evaluate(conj, v), a && b);
      EXPECT_EQ(mgr.Evaluate(disj, v), a || b);
      EXPECT_EQ(mgr.Evaluate(neg, v), !a);
    }
  }
}

TEST(BddTest, ReductionRules) {
  BddManager mgr(2);
  BddRef x = mgr.Var(0);
  // x OR x = x, x AND NOT x = false: canonical representation means
  // pointer equality.
  EXPECT_EQ(mgr.Or(x, x), x);
  EXPECT_EQ(mgr.And(x, mgr.Not(x)), kBddFalse);
  EXPECT_EQ(mgr.Or(x, mgr.Not(x)), kBddTrue);
  // Ite(x, y, y) = y.
  BddRef y = mgr.Var(1);
  EXPECT_EQ(mgr.Ite(x, y, y), y);
}

TEST(BddTest, CountModels) {
  BddManager mgr(3);
  BddRef x = mgr.Var(0);
  BddRef y = mgr.Var(1);
  EXPECT_EQ(mgr.CountModels(kBddTrue), 8u);
  EXPECT_EQ(mgr.CountModels(kBddFalse), 0u);
  EXPECT_EQ(mgr.CountModels(x), 4u);
  EXPECT_EQ(mgr.CountModels(mgr.And(x, y)), 2u);
  EXPECT_EQ(mgr.CountModels(mgr.Or(x, y)), 6u);
}

TEST(BddTest, WmcSimple) {
  BddManager mgr(2);
  BddRef x = mgr.Var(0);
  BddRef y = mgr.Var(1);
  std::vector<double> probs = {0.3, 0.6};
  EXPECT_NEAR(mgr.Wmc(mgr.And(x, y), probs), 0.18, 1e-12);
  EXPECT_NEAR(mgr.Wmc(mgr.Or(x, y), probs), 0.3 + 0.6 - 0.18, 1e-12);
  EXPECT_NEAR(mgr.Wmc(mgr.Not(x), probs), 0.7, 1e-12);
  EXPECT_NEAR(mgr.Wmc(kBddTrue, probs), 1.0, 1e-12);
}

BoolCircuit RandomCircuit(Rng& rng, uint32_t num_events, uint32_t num_gates,
                          GateId* root) {
  BoolCircuit c;
  std::vector<GateId> pool;
  for (EventId e = 0; e < num_events; ++e) pool.push_back(c.AddVar(e));
  for (uint32_t i = 0; i < num_gates; ++i) {
    GateId a = pool[rng.UniformInt(pool.size())];
    GateId b = pool[rng.UniformInt(pool.size())];
    switch (rng.UniformInt(3)) {
      case 0:
        pool.push_back(c.AddNot(a));
        break;
      case 1:
        pool.push_back(c.AddAnd(a, b));
        break;
      default:
        pool.push_back(c.AddOr(a, b));
        break;
    }
  }
  *root = pool.back();
  return c;
}

class BddCircuitTest : public ::testing::TestWithParam<int> {};

TEST_P(BddCircuitTest, FromCircuitPreservesSemantics) {
  Rng rng(GetParam());
  const uint32_t kEvents = 6;
  GateId root;
  BoolCircuit c = RandomCircuit(rng, kEvents, 25, &root);
  BddManager mgr(kEvents);
  std::vector<uint32_t> levels(kEvents);
  for (uint32_t i = 0; i < kEvents; ++i) levels[i] = i;
  BddRef f = mgr.FromCircuit(c, root, levels);
  for (uint64_t mask = 0; mask < (1u << kEvents); ++mask) {
    std::vector<bool> bits(kEvents);
    for (uint32_t i = 0; i < kEvents; ++i) bits[i] = (mask >> i) & 1;
    EXPECT_EQ(mgr.Evaluate(f, bits),
              c.Evaluate(root, Valuation::FromMask(mask, kEvents)))
        << mask;
  }
}

TEST_P(BddCircuitTest, WmcMatchesExhaustive) {
  Rng rng(GetParam() + 100);
  const uint32_t kEvents = 6;
  GateId root;
  BoolCircuit c = RandomCircuit(rng, kEvents, 25, &root);
  EventRegistry registry;
  std::vector<double> probs;
  for (uint32_t i = 0; i < kEvents; ++i) {
    double p = 0.1 + 0.8 * rng.UniformDouble();
    registry.Register("e" + std::to_string(i), p);
    probs.push_back(p);
  }
  BddManager mgr(kEvents);
  std::vector<uint32_t> levels(kEvents);
  for (uint32_t i = 0; i < kEvents; ++i) levels[i] = i;
  BddRef f = mgr.FromCircuit(c, root, levels);
  EXPECT_NEAR(mgr.Wmc(f, probs), ExhaustiveProbability(c, root, registry),
              1e-10);
}

TEST_P(BddCircuitTest, VariableOrderDoesNotChangeWmc) {
  Rng rng(GetParam() + 200);
  const uint32_t kEvents = 5;
  GateId root;
  BoolCircuit c = RandomCircuit(rng, kEvents, 20, &root);
  std::vector<double> probs = {0.2, 0.4, 0.5, 0.6, 0.8};

  // Identity order.
  BddManager mgr1(kEvents);
  std::vector<uint32_t> id_levels = {0, 1, 2, 3, 4};
  double w1 = 0.0;
  {
    BddRef f = mgr1.FromCircuit(c, root, id_levels);
    w1 = mgr1.Wmc(f, probs);
  }
  // Reversed order (probabilities must follow the levels).
  BddManager mgr2(kEvents);
  std::vector<uint32_t> rev_levels = {4, 3, 2, 1, 0};
  std::vector<double> rev_probs = {0.8, 0.6, 0.5, 0.4, 0.2};
  BddRef g = mgr2.FromCircuit(c, root, rev_levels);
  EXPECT_NEAR(mgr2.Wmc(g, rev_probs), w1, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddCircuitTest, ::testing::Range(0, 20));

TEST(BddTest, HashConsingKeepsCanonicalForm) {
  BddManager mgr(4);
  BddRef x0 = mgr.Var(0);
  BddRef x1 = mgr.Var(1);
  // (x0 & x1) built two different ways must be the same node.
  BddRef a = mgr.And(x0, x1);
  BddRef b = mgr.Ite(x0, x1, kBddFalse);
  EXPECT_EQ(a, b);
}


TEST(BddTest, RestrictFixesVariables) {
  BddManager mgr(3);
  BddRef x = mgr.Var(0);
  BddRef y = mgr.Var(1);
  BddRef z = mgr.Var(2);
  BddRef f = mgr.Or(mgr.And(x, y), z);
  // f[x := 1] = y OR z; f[x := 0] = z.
  EXPECT_EQ(mgr.Restrict(f, 0, true), mgr.Or(y, z));
  EXPECT_EQ(mgr.Restrict(f, 0, false), z);
  // Restricting a variable outside the support is the identity.
  BddRef g = mgr.And(x, y);
  EXPECT_EQ(mgr.Restrict(g, 2, true), g);
}

TEST(BddTest, ExistsQuantification) {
  BddManager mgr(2);
  BddRef x = mgr.Var(0);
  BddRef y = mgr.Var(1);
  // ∃x. (x AND y) = y;  ∃x. x = true;  ∃y. (x XOR y) = true.
  EXPECT_EQ(mgr.Exists(mgr.And(x, y), 0), y);
  EXPECT_EQ(mgr.Exists(x, 0), kBddTrue);
  BddRef xor_xy = mgr.Or(mgr.And(x, mgr.Not(y)), mgr.And(mgr.Not(x), y));
  EXPECT_EQ(mgr.Exists(xor_xy, 1), kBddTrue);
}

TEST(BddTest, RestrictCommutesWithEvaluation) {
  Rng rng(33);
  GateId root;
  BoolCircuit c = RandomCircuit(rng, 5, 20, &root);
  BddManager mgr(5);
  std::vector<uint32_t> levels = {0, 1, 2, 3, 4};
  BddRef f = mgr.FromCircuit(c, root, levels);
  BddRef f1 = mgr.Restrict(f, 2, true);
  for (uint64_t mask = 0; mask < 32; ++mask) {
    std::vector<bool> bits(5);
    for (int i = 0; i < 5; ++i) bits[i] = (mask >> i) & 1;
    std::vector<bool> forced = bits;
    forced[2] = true;
    EXPECT_EQ(mgr.Evaluate(f1, bits), mgr.Evaluate(f, forced)) << mask;
  }
}

}  // namespace
}  // namespace tud
