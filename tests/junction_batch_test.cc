// Equivalence suite for the vectorized batched junction-tree execution
// path: ExecuteBatch (one calibrating pass over a shared decomposition
// of the union cone) must agree with sequential single-root Execute on
// randomized circuits, with and without evidence; the small-bag kernels
// must agree with the generic strided loop and the bit-recombination
// fallback; and the session-level ProbabilityBatch surface must agree
// with per-query Probability for every engine mode (shared pass,
// thread-parallel per-root plans, default loop).

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "automata/automaton_expr.h"
#include "automata/automaton_library.h"
#include "gtest/gtest.h"
#include "inference/engine.h"
#include "inference/exhaustive.h"
#include "inference/junction_tree.h"
#include "queries/query_session.h"
#include "uncertain/c_instance.h"
#include "uncertain/tid_instance.h"
#include "util/rng.h"

namespace tud {
namespace {

BoolCircuit RandomCircuit(Rng& rng, uint32_t num_events, uint32_t num_gates,
                          std::vector<GateId>* pool_out) {
  BoolCircuit c;
  std::vector<GateId> pool;
  for (EventId e = 0; e < num_events; ++e) pool.push_back(c.AddVar(e));
  for (uint32_t i = 0; i < num_gates; ++i) {
    GateId a = pool[rng.UniformInt(pool.size())];
    GateId b = pool[rng.UniformInt(pool.size())];
    switch (rng.UniformInt(3)) {
      case 0:
        pool.push_back(c.AddNot(a));
        break;
      case 1:
        pool.push_back(c.AddAnd(a, b));
        break;
      default:
        pool.push_back(c.AddOr(a, b));
        break;
    }
  }
  *pool_out = std::move(pool);
  return c;
}

EventRegistry RandomRegistry(Rng& rng, uint32_t num_events) {
  EventRegistry registry;
  for (uint32_t i = 0; i < num_events; ++i) {
    registry.Register("e" + std::to_string(i),
                      0.05 + 0.9 * rng.UniformDouble());
  }
  return registry;
}

std::vector<GateId> RandomRoots(Rng& rng, const std::vector<GateId>& pool,
                                size_t count) {
  std::vector<GateId> roots;
  roots.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    roots.push_back(pool[rng.UniformInt(pool.size())]);
  }
  return roots;
}

class JunctionBatchTest : public ::testing::TestWithParam<int> {};

TEST_P(JunctionBatchTest, ExecuteBatchMatchesSequentialExecute) {
  Rng rng(GetParam());
  std::vector<GateId> pool;
  BoolCircuit c = RandomCircuit(rng, 9, 40, &pool);
  EventRegistry registry = RandomRegistry(rng, 9);
  std::vector<GateId> roots = RandomRoots(rng, pool, 8);

  JunctionTreePlan batch = JunctionTreePlan::BuildBatch(c, roots);
  EngineStats stats;
  std::vector<double> batched = batch.ExecuteBatch(registry, {}, &stats);
  ASSERT_EQ(batched.size(), roots.size());
  EXPECT_EQ(stats.batch_size, roots.size());
  EXPECT_GT(stats.bags_visited, 0u);

  for (size_t i = 0; i < roots.size(); ++i) {
    JunctionTreePlan single = JunctionTreePlan::Build(c, roots[i]);
    EXPECT_NEAR(batched[i], single.Execute(registry), 1e-9)
        << "root " << i << " (gate " << roots[i] << ")";
  }
}

TEST_P(JunctionBatchTest, ExecuteBatchMatchesSequentialWithEvidence) {
  Rng rng(GetParam() + 500);
  std::vector<GateId> pool;
  BoolCircuit c = RandomCircuit(rng, 8, 35, &pool);
  EventRegistry registry = RandomRegistry(rng, 8);
  std::vector<GateId> roots = RandomRoots(rng, pool, 6);
  const Evidence evidence = {{0, true}, {3, false}};

  JunctionTreePlan batch = JunctionTreePlan::BuildBatch(c, roots);
  std::vector<double> batched = batch.ExecuteBatch(registry, evidence);
  for (size_t i = 0; i < roots.size(); ++i) {
    JunctionTreePlan single = JunctionTreePlan::Build(c, roots[i]);
    EXPECT_NEAR(batched[i], single.Execute(registry, evidence), 1e-9)
        << "root " << i;
  }
}

TEST_P(JunctionBatchTest, SmallBagKernelsMatchGenericAndBitLoops) {
  Rng rng(GetParam() + 1000);
  std::vector<GateId> pool;
  BoolCircuit c = RandomCircuit(rng, 8, 35, &pool);
  EventRegistry registry = RandomRegistry(rng, 8);
  const GateId root = pool.back();
  const Evidence evidence = {{1, false}};

  JunctionTreePlan fast = JunctionTreePlan::Build(c, root);
  JunctionTreePlan generic = JunctionTreePlan::Build(c, root);
  generic.ForceGenericKernelsForTest();
  JunctionTreePlan bitloops = JunctionTreePlan::Build(c, root);
  bitloops.ForceBitLoopsForTest();

  const double expected = fast.Execute(registry);
  EXPECT_DOUBLE_EQ(generic.Execute(registry), expected);
  EXPECT_DOUBLE_EQ(bitloops.Execute(registry), expected);
  const double pinned = fast.Execute(registry, evidence);
  EXPECT_DOUBLE_EQ(generic.Execute(registry, evidence), pinned);
  EXPECT_DOUBLE_EQ(bitloops.Execute(registry, evidence), pinned);
}

TEST_P(JunctionBatchTest, UnfusedStaticsMatchFusedTables) {
  // Thresholds at zero disable static-table fusion and gather
  // precomputation entirely, driving every bag down the unfused /
  // bit-recombination path the widest bags use.
  Rng rng(GetParam() + 1500);
  std::vector<GateId> pool;
  BoolCircuit c = RandomCircuit(rng, 8, 35, &pool);
  EventRegistry registry = RandomRegistry(rng, 8);
  const GateId root = pool.back();
  std::vector<GateId> roots = RandomRoots(rng, pool, 5);

  JunctionTreePlan fused = JunctionTreePlan::Build(c, root);
  JunctionTreePlan fused_batch = JunctionTreePlan::BuildBatch(c, roots);
  JunctionTreePlan::SetKernelThresholdsForTest(0, 0);
  JunctionTreePlan unfused = JunctionTreePlan::Build(c, root);
  JunctionTreePlan unfused_batch = JunctionTreePlan::BuildBatch(c, roots);
  JunctionTreePlan::SetKernelThresholdsForTest(16, 16);

  EXPECT_NEAR(unfused.Execute(registry), fused.Execute(registry), 1e-12);
  std::vector<double> a = fused_batch.ExecuteBatch(registry);
  std::vector<double> b = unfused_batch.ExecuteBatch(registry);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST_P(JunctionBatchTest, EngineBatchModesAgreeWithExhaustive) {
  Rng rng(GetParam() + 2000);
  std::vector<GateId> pool;
  BoolCircuit c = RandomCircuit(rng, 7, 30, &pool);
  EventRegistry registry = RandomRegistry(rng, 7);
  std::vector<GateId> roots = RandomRoots(rng, pool, 5);
  const Evidence evidence = {{2, true}};

  JunctionTreeEngine shared(/*seed_topological=*/false, /*cache_plans=*/true);
  JunctionTreeEngine threaded(/*seed_topological=*/false,
                              /*cache_plans=*/true, /*batch_threads=*/4);
  JunctionTreeEngine uncached;
  ExhaustiveEngine exhaustive;

  std::vector<EngineResult> s = shared.EstimateBatch(c, roots, registry,
                                                     evidence);
  std::vector<EngineResult> t = threaded.EstimateBatch(c, roots, registry,
                                                       evidence);
  std::vector<EngineResult> u = uncached.EstimateBatch(c, roots, registry,
                                                       evidence);
  // The default (loop) implementation through the base-class pointer.
  std::vector<EngineResult> d = static_cast<ProbabilityEngine&>(exhaustive)
                                    .EstimateBatch(c, roots, registry,
                                                   evidence);
  ASSERT_EQ(s.size(), roots.size());
  for (size_t i = 0; i < roots.size(); ++i) {
    EXPECT_NEAR(s[i].value, d[i].value, 1e-9) << "shared vs exhaustive";
    EXPECT_NEAR(t[i].value, d[i].value, 1e-9) << "threaded vs exhaustive";
    EXPECT_NEAR(u[i].value, d[i].value, 1e-9) << "uncached vs exhaustive";
    EXPECT_EQ(s[i].stats.batch_size, roots.size());
    EXPECT_EQ(t[i].stats.batch_size, roots.size());
    EXPECT_EQ(d[i].stats.batch_size, roots.size());
    EXPECT_GT(s[i].stats.bags_visited, 0u);
    EXPECT_GT(s[i].stats.max_table, 0u);
  }
  // Reissuing the identical batch hits the memoised batch plan.
  std::vector<EngineResult> again = shared.EstimateBatch(c, roots, registry,
                                                         evidence);
  for (size_t i = 0; i < roots.size(); ++i) {
    EXPECT_DOUBLE_EQ(again[i].value, s[i].value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JunctionBatchTest, ::testing::Range(0, 8));

TEST(JunctionBatchTest, ConstantAndDuplicateRoots) {
  EventRegistry registry;
  registry.Register("a", 0.25);
  registry.Register("b", 0.5);
  BoolCircuit c;
  GateId va = c.AddVar(0);
  GateId vb = c.AddVar(1);
  GateId both = c.AddAnd(va, vb);
  GateId yes = c.AddConst(true);
  GateId no = c.AddConst(false);

  JunctionTreePlan plan =
      JunctionTreePlan::BuildBatch(c, {yes, both, no, both, va});
  std::vector<double> p = plan.ExecuteBatch(registry);
  ASSERT_EQ(p.size(), 5u);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_NEAR(p[1], 0.125, 1e-12);
  EXPECT_DOUBLE_EQ(p[2], 0.0);
  EXPECT_NEAR(p[3], 0.125, 1e-12);
  EXPECT_NEAR(p[4], 0.25, 1e-12);
}

TEST(JunctionBatchTest, AllConstantBatchIsTrivial) {
  EventRegistry registry;
  BoolCircuit c;
  GateId yes = c.AddConst(true);
  GateId no = c.AddConst(false);
  JunctionTreePlan plan = JunctionTreePlan::BuildBatch(c, {no, yes});
  std::vector<double> p = plan.ExecuteBatch(registry);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 1.0);
}

// The memo key is the canonical battery, not the caller's vector: a
// permuted or duplicated battery is the same battery, and must hit the
// cached decision instead of building (and caching) a second plan.
TEST(JunctionBatchTest, PermutedAndDuplicatedBatteryHitsCache) {
  Rng rng(31);
  std::vector<GateId> pool;
  BoolCircuit c = RandomCircuit(rng, 8, 30, &pool);
  EventRegistry registry = RandomRegistry(rng, 8);
  std::vector<GateId> roots = RandomRoots(rng, pool, 6);
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());

  JunctionTreeEngine engine(/*seed_topological=*/false,
                            /*cache_plans=*/true);
  std::vector<EngineResult> first =
      engine.EstimateBatch(c, roots, registry, {});
  EXPECT_EQ(engine.batch_builds(), 1u);
  EXPECT_EQ(engine.batch_cache_size(), 1u);

  // Reversed order: same decision, results in caller order.
  std::vector<GateId> reversed(roots.rbegin(), roots.rend());
  std::vector<EngineResult> r =
      engine.EstimateBatch(c, reversed, registry, {});
  EXPECT_EQ(engine.batch_builds(), 1u);
  EXPECT_EQ(engine.batch_cache_size(), 1u);
  for (size_t i = 0; i < reversed.size(); ++i) {
    EXPECT_DOUBLE_EQ(r[i].value, first[roots.size() - 1 - i].value);
  }

  // Duplicates collapse onto the canonical battery and map back.
  std::vector<GateId> doubled = roots;
  doubled.insert(doubled.end(), roots.begin(), roots.end());
  std::vector<EngineResult> d =
      engine.EstimateBatch(c, doubled, registry, {});
  EXPECT_EQ(engine.batch_builds(), 1u);
  for (size_t i = 0; i < roots.size(); ++i) {
    EXPECT_DOUBLE_EQ(d[i].value, first[i].value);
    EXPECT_DOUBLE_EQ(d[i + roots.size()].value, first[i].value);
  }
}

// Eviction is FIFO one entry at a time, not a wholesale wipe: a hot
// battery inserted early must still be cached after enough distinct
// batteries to exceed the memo capacity, as long as it stays younger
// than the churn (capacity 64, churn 40 here).
TEST(JunctionBatchTest, HotBatterySurvivesCachePressure) {
  Rng rng(32);
  std::vector<GateId> pool;
  BoolCircuit c = RandomCircuit(rng, 8, 120, &pool);
  EventRegistry registry = RandomRegistry(rng, 8);
  JunctionTreeEngine engine(/*seed_topological=*/false,
                            /*cache_plans=*/true);

  std::vector<GateId> hot = RandomRoots(rng, pool, 5);
  std::sort(hot.begin(), hot.end());
  hot.erase(std::unique(hot.begin(), hot.end()), hot.end());
  std::vector<EngineResult> expected =
      engine.EstimateBatch(c, hot, registry, {});
  EXPECT_EQ(engine.batch_builds(), 1u);

  // 40 single-root batteries churn the memo but stay far from evicting
  // the hot entry (the cache holds 64 decisions). Structural hashing
  // may deduplicate pool gates, so count the distinct batteries.
  std::vector<GateId> churned;
  for (uint32_t i = 0; i < 40; ++i) {
    engine.EstimateBatch(c, {pool[i]}, registry, {});
    churned.push_back(pool[i]);
  }
  std::sort(churned.begin(), churned.end());
  churned.erase(std::unique(churned.begin(), churned.end()), churned.end());
  const uint64_t builds_after_churn = engine.batch_builds();
  EXPECT_EQ(builds_after_churn, 1u + churned.size());

  std::vector<EngineResult> again =
      engine.EstimateBatch(c, hot, registry, {});
  EXPECT_EQ(engine.batch_builds(), builds_after_churn)
      << "hot battery was evicted by unrelated churn";
  for (size_t i = 0; i < hot.size(); ++i) {
    EXPECT_DOUBLE_EQ(again[i].value, expected[i].value);
  }

  // Push past capacity: the memo caps at 64 entries and keeps serving.
  for (uint32_t i = 40; i < 90; ++i) {
    engine.EstimateBatch(c, {pool[i]}, registry, {});
  }
  EXPECT_LE(engine.batch_cache_size(), 64u);
  std::vector<EngineResult> final_check =
      engine.EstimateBatch(c, hot, registry, {});
  for (size_t i = 0; i < hot.size(); ++i) {
    EXPECT_DOUBLE_EQ(final_check[i].value, expected[i].value);
  }
}

TEST(QuerySessionBatchTest, ProbabilityBatchMatchesProbability) {
  Schema schema;
  schema.AddRelation("E", 2);
  Rng rng(42);
  TidInstance tid(schema);
  const uint32_t rungs = 12;
  for (uint32_t i = 0; i + 2 < 2 * rungs; i += 2) {
    tid.AddFact(0, {i, i + 2}, 0.5 + 0.4 * rng.UniformDouble());
    tid.AddFact(0, {i + 1, i + 3}, 0.5 + 0.4 * rng.UniformDouble());
    tid.AddFact(0, {i, i + 1}, 0.3 + 0.4 * rng.UniformDouble());
  }
  QuerySession session = QuerySession::FromCInstance(
      tid.ToPcInstance(),
      std::make_unique<JunctionTreeEngine>(
          /*seed_topological=*/false, /*cache_plans=*/true));

  std::vector<GateId> lineages;
  for (uint32_t t = 1; t < rungs; t += 2) {
    lineages.push_back(session.ReachabilityLineage(0, 0, 2 * t));
  }
  std::vector<EngineResult> batched = session.ProbabilityBatch(lineages);
  ASSERT_EQ(batched.size(), lineages.size());
  for (size_t i = 0; i < lineages.size(); ++i) {
    EXPECT_NEAR(batched[i].value, session.Probability(lineages[i]).value,
                1e-9)
        << "target " << i;
    EXPECT_EQ(batched[i].stats.batch_size, lineages.size());
  }

  // Evidence is shared across the whole batch.
  const Evidence evidence = {{0, false}};
  std::vector<EngineResult> pinned =
      session.ProbabilityBatch(lineages, evidence);
  for (size_t i = 0; i < lineages.size(); ++i) {
    EXPECT_NEAR(pinned[i].value,
                session.Probability(lineages[i], evidence).value, 1e-9);
  }
}

TEST(QuerySessionBatchTest, SubLineageMarginalsUseSharedPass) {
  // A question battery over ONE lineage's sub-gates (the crowd-style
  // "which internal hypothesis to ask about next" workload): the union
  // cone is the single lineage cone, so the engine must answer all of
  // them in one shared calibrating pass instead of per-root plans.
  Schema schema;
  schema.AddRelation("E", 2);
  Rng rng(7);
  TidInstance tid(schema);
  const uint32_t rungs = 16;
  for (uint32_t i = 0; i + 2 < 2 * rungs; i += 2) {
    tid.AddFact(0, {i, i + 2}, 0.5 + 0.4 * rng.UniformDouble());
    tid.AddFact(0, {i + 1, i + 3}, 0.5 + 0.4 * rng.UniformDouble());
    tid.AddFact(0, {i, i + 1}, 0.3 + 0.4 * rng.UniformDouble());
  }
  QuerySession session = QuerySession::FromCInstance(
      tid.ToPcInstance(),
      std::make_unique<JunctionTreeEngine>(
          /*seed_topological=*/false, /*cache_plans=*/true));
  GateId lineage = session.ReachabilityLineage(0, 0, 2 * rungs - 2);
  std::vector<GateId> cone =
      session.pcc().circuit().ReachableFrom(lineage);
  std::vector<GateId> roots;
  for (size_t i = 0; i < cone.size() && roots.size() < 16;
       i += cone.size() / 16) {
    roots.push_back(cone[i]);
  }
  roots.push_back(lineage);

  std::vector<EngineResult> batched = session.ProbabilityBatch(roots);
  ASSERT_EQ(batched.size(), roots.size());
  for (size_t i = 0; i < roots.size(); ++i) {
    EXPECT_NEAR(batched[i].value, session.Probability(roots[i]).value, 1e-9)
        << "root " << i;
    // The calibrating pass visits every bag upward plus the pruned
    // downward sweep — strictly more than one upward pass, and the
    // same shared-plan stats on every result; per-root fallback would
    // report per-root cones instead.
    EXPECT_GT(batched[i].stats.bags_visited, batched[i].stats.num_bags);
    EXPECT_EQ(batched[i].stats.num_gates, batched[0].stats.num_gates);
  }
}

TEST(TreeQuerySessionBatchTest, ProbabilityBatchMatchesProbability) {
  EventRegistry registry;
  EventId e0 = registry.Register("e0", 0.4);
  EventId e1 = registry.Register("e1", 0.6);
  UncertainBinaryTree tree;
  GateId v0 = tree.circuit().AddVar(e0);
  GateId v1 = tree.circuit().AddVar(e1);
  TreeNodeId l0 = tree.AddLeaf({{1, v0}, {0, tree.circuit().AddNot(v0)}});
  TreeNodeId l1 = tree.AddLeaf({{2, v1}, {0, tree.circuit().AddNot(v1)}});
  tree.AddInternal({{0, tree.circuit().AddConst(true)}}, l0, l1);

  TreeQuerySession session(
      std::move(tree), registry,
      std::make_unique<JunctionTreeEngine>(
          /*seed_topological=*/false, /*cache_plans=*/true));
  std::vector<AutomatonExpr> exprs = {
      AutomatonExpr::Atom(MakeExistsLabel(3, 1)),
      AutomatonExpr::Atom(MakeExistsLabel(3, 2)),
      AutomatonExpr::Atom(MakeExistsLabel(3, 1)) &&
          !AutomatonExpr::Atom(MakeExistsLabel(3, 2)),
  };
  std::vector<EngineResult> batched = session.ProbabilityBatch(exprs);
  ASSERT_EQ(batched.size(), exprs.size());
  for (size_t i = 0; i < exprs.size(); ++i) {
    EXPECT_NEAR(batched[i].value, session.Probability(exprs[i]).value, 1e-9)
        << "expr " << i;
  }
  EXPECT_NEAR(batched[2].value, 0.4 * (1 - 0.6), 1e-9);
}

}  // namespace
}  // namespace tud
