#include <functional>
#include <vector>

#include "automata/automaton_library.h"
#include "automata/binary_tree.h"
#include "treedec/tree_decomposition.h"
#include "automata/provenance_run.h"
#include "automata/tree_automaton.h"
#include "automata/uncertain_tree.h"
#include "gtest/gtest.h"
#include "inference/exhaustive.h"
#include "inference/junction_tree.h"
#include "util/rng.h"

namespace tud {
namespace {

// Reference (slow) property checks on plain trees.
int CountLabel(const BinaryTree& t, Label target) {
  int count = 0;
  for (TreeNodeId n = 0; n < t.NumNodes(); ++n) {
    if (t.label(n) == target) ++count;
  }
  return count;
}

bool RefEveryBUnderA(const BinaryTree& t, Label a, Label b) {
  // For each b-node, check some strict ancestor is labeled a.
  std::vector<TreeNodeId> parent(t.NumNodes(), kNoTreeNode);
  for (TreeNodeId n = 0; n < t.NumNodes(); ++n) {
    if (!t.IsLeaf(n)) {
      parent[t.left(n)] = n;
      parent[t.right(n)] = n;
    }
  }
  for (TreeNodeId n = 0; n < t.NumNodes(); ++n) {
    if (t.label(n) != b) continue;
    bool shielded = false;
    for (TreeNodeId x = parent[n]; x != kNoTreeNode; x = parent[x]) {
      if (t.label(x) == a) {
        shielded = true;
        break;
      }
    }
    if (!shielded) return false;
  }
  return true;
}

bool RefExistsBBelowA(const BinaryTree& t, Label a, Label b) {
  std::vector<TreeNodeId> parent(t.NumNodes(), kNoTreeNode);
  for (TreeNodeId n = 0; n < t.NumNodes(); ++n) {
    if (!t.IsLeaf(n)) {
      parent[t.left(n)] = n;
      parent[t.right(n)] = n;
    }
  }
  for (TreeNodeId n = 0; n < t.NumNodes(); ++n) {
    if (t.label(n) != b) continue;
    for (TreeNodeId x = parent[n]; x != kNoTreeNode; x = parent[x]) {
      if (t.label(x) == a) return true;
    }
  }
  return false;
}

BinaryTree RandomTree(Rng& rng, uint32_t num_internal, Label alphabet) {
  BinaryTree t;
  std::vector<TreeNodeId> roots;
  for (uint32_t i = 0; i < num_internal + 1; ++i) {
    roots.push_back(
        t.AddLeaf(static_cast<Label>(rng.UniformInt(alphabet))));
  }
  while (roots.size() > 1) {
    size_t i = rng.UniformInt(roots.size());
    TreeNodeId a = roots[i];
    roots.erase(roots.begin() + i);
    size_t j = rng.UniformInt(roots.size());
    TreeNodeId b = roots[j];
    roots[j] = t.AddInternal(static_cast<Label>(rng.UniformInt(alphabet)),
                             a, b);
  }
  return t;
}

TEST(BinaryTreeTest, Construction) {
  BinaryTree t;
  TreeNodeId l = t.AddLeaf(0);
  TreeNodeId r = t.AddLeaf(1);
  TreeNodeId root = t.AddInternal(2, l, r);
  EXPECT_EQ(t.root(), root);
  EXPECT_TRUE(t.IsLeaf(l));
  EXPECT_FALSE(t.IsLeaf(root));
  EXPECT_EQ(t.AlphabetSize(), 3u);
}

class AutomatonPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AutomatonPropertyTest, LibraryAutomataMatchReferenceChecks) {
  Rng rng(GetParam());
  const Label kAlphabet = 3;
  BinaryTree t = RandomTree(rng, 2 + rng.UniformInt(12), kAlphabet);
  EXPECT_EQ(MakeExistsLabel(kAlphabet, 1).Accepts(t),
            CountLabel(t, 1) >= 1);
  EXPECT_EQ(MakeExistsLabelNondet(kAlphabet, 1).Accepts(t),
            CountLabel(t, 1) >= 1);
  EXPECT_EQ(MakeCountAtLeast(kAlphabet, 2, 3).Accepts(t),
            CountLabel(t, 2) >= 3);
  EXPECT_EQ(MakeRootHasLabel(kAlphabet, 0).Accepts(t), t.label(t.root()) == 0);
  EXPECT_EQ(MakeEveryBUnderA(kAlphabet, 0, 1).Accepts(t),
            RefEveryBUnderA(t, 0, 1));
  EXPECT_EQ(MakeExistsBBelowA(kAlphabet, 0, 1).Accepts(t),
            RefExistsBBelowA(t, 0, 1));
}

TEST_P(AutomatonPropertyTest, BooleanClosureOperations) {
  Rng rng(GetParam() + 300);
  const Label kAlphabet = 2;
  BinaryTree t = RandomTree(rng, 2 + rng.UniformInt(8), kAlphabet);
  TreeAutomaton exists0 = MakeExistsLabel(kAlphabet, 0);
  TreeAutomaton exists1 = MakeExistsLabel(kAlphabet, 1);

  TreeAutomaton both = TreeAutomaton::Product(exists0, exists1, true);
  EXPECT_EQ(both.Accepts(t), exists0.Accepts(t) && exists1.Accepts(t));

  TreeAutomaton either = TreeAutomaton::Product(exists0, exists1, false);
  EXPECT_EQ(either.Accepts(t), exists0.Accepts(t) || exists1.Accepts(t));

  TreeAutomaton not0 = exists0.Complement();
  EXPECT_EQ(not0.Accepts(t), !exists0.Accepts(t));

  TreeAutomaton det = MakeExistsLabelNondet(kAlphabet, 0).Determinize();
  EXPECT_EQ(det.Accepts(t), exists0.Accepts(t));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutomatonPropertyTest,
                         ::testing::Range(0, 25));

TEST(AutomatonTest, EmptinessCheck) {
  TreeAutomaton exists = MakeExistsLabel(2, 1);
  EXPECT_FALSE(exists.IsEmpty());
  // "Exists label 1 AND not exists label 1" is empty.
  TreeAutomaton contradiction =
      TreeAutomaton::Product(exists, exists.Complement(), true);
  EXPECT_TRUE(contradiction.IsEmpty());
  // An automaton with no accepting states is empty.
  TreeAutomaton none(1, 2);
  none.AddLeafTransition(0, 0);
  none.AddTransition(0, 0, 0, 0);
  EXPECT_TRUE(none.IsEmpty());
}

TEST(AutomatonTest, ReachableStatesBottomUp) {
  TreeAutomaton a = MakeExistsLabel(2, 1);
  BinaryTree t;
  TreeNodeId l = t.AddLeaf(1);
  TreeNodeId r = t.AddLeaf(0);
  t.AddInternal(0, l, r);
  auto reach = a.ReachableStates(t);
  EXPECT_TRUE(reach[l].contains(1));
  EXPECT_TRUE(reach[r].contains(0));
  EXPECT_TRUE(reach[t.root()].contains(1));
}

// ---------------------------------------------------------------------------
// ProvenanceRun: the lineage gate agrees with running the automaton on
// every possible world.
// ---------------------------------------------------------------------------

// Builds an uncertain tree whose node labels flip between two letters
// guarded by one event per node (event i controls node i).
UncertainBinaryTree FlipTree(Rng& rng, uint32_t num_internal,
                             EventRegistry& registry) {
  UncertainBinaryTree t;
  uint32_t next_event = 0;
  auto make_alts = [&]() {
    EventId e = next_event++;
    registry.Register("n" + std::to_string(e),
                      0.2 + 0.6 * rng.UniformDouble());
    GateId var = t.circuit().AddVar(e);
    GateId not_var = t.circuit().AddNot(var);
    return std::vector<std::pair<Label, GateId>>{{0, not_var}, {1, var}};
  };
  std::vector<TreeNodeId> roots;
  for (uint32_t i = 0; i < num_internal + 1; ++i) {
    roots.push_back(t.AddLeaf(make_alts()));
  }
  while (roots.size() > 1) {
    size_t i = rng.UniformInt(roots.size());
    TreeNodeId a = roots[i];
    roots.erase(roots.begin() + i);
    size_t j = rng.UniformInt(roots.size());
    TreeNodeId b = roots[j];
    roots[j] = t.AddInternal(make_alts(), a, b);
  }
  return t;
}

class ProvenanceRunTest : public ::testing::TestWithParam<int> {};

TEST_P(ProvenanceRunTest, LineageMatchesWorldByWorld) {
  Rng rng(GetParam());
  EventRegistry registry;
  UncertainBinaryTree tree = FlipTree(rng, 2 + rng.UniformInt(5), registry);
  const size_t num_events = registry.size();
  ASSERT_LE(num_events, 16u);

  TreeAutomaton automata[] = {
      MakeExistsLabel(2, 1),
      MakeCountAtLeast(2, 1, 2),
      MakeEveryBUnderA(2, 0, 1),
      MakeExistsLabelNondet(2, 1),
  };
  for (TreeAutomaton& a : automata) {
    GateId lineage = ProvenanceRun(a, tree);
    for (uint64_t mask = 0; mask < (1ULL << num_events); ++mask) {
      Valuation v = Valuation::FromMask(mask, num_events);
      ASSERT_TRUE(tree.IsWellFormedUnder(v));
      BinaryTree world = tree.World(v);
      EXPECT_EQ(tree.circuit().Evaluate(lineage, v), a.Accepts(world))
          << "mask=" << mask;
    }
  }
}

TEST_P(ProvenanceRunTest, ProbabilityViaMessagePassingMatchesEnumeration) {
  Rng rng(GetParam() + 900);
  EventRegistry registry;
  UncertainBinaryTree tree = FlipTree(rng, 3, registry);
  TreeAutomaton a = MakeExistsLabel(2, 1);
  GateId lineage = ProvenanceRun(a, tree);
  double exact =
      ExhaustiveProbability(tree.circuit(), lineage, registry);
  double mp = JunctionTreeProbability(tree.circuit(), lineage, registry);
  EXPECT_NEAR(mp, exact, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProvenanceRunTest, ::testing::Range(0, 12));

TEST(UncertainTreeTest, WorldSelectsUniqueAlternative) {
  EventRegistry registry;
  EventId e = registry.Register("e", 0.5);
  UncertainBinaryTree t;
  GateId var = t.circuit().AddVar(e);
  GateId not_var = t.circuit().AddNot(var);
  t.AddLeaf({{7, var}, {9, not_var}});
  Valuation v(1);
  v.set_value(e, true);
  EXPECT_EQ(t.World(v).label(0), 7u);
  v.set_value(e, false);
  EXPECT_EQ(t.World(v).label(0), 9u);
  EXPECT_TRUE(t.IsWellFormedUnder(v));
}

TEST(UncertainTreeDeathTest, OverlappingGuardsRejectedByWorld) {
  EventRegistry registry;
  EventId e = registry.Register("e", 0.5);
  UncertainBinaryTree t;
  GateId var = t.circuit().AddVar(e);
  t.AddLeaf({{0, var}, {1, var}});  // Both guards true when e holds.
  Valuation v(1);
  v.set_value(e, true);
  EXPECT_FALSE(t.IsWellFormedUnder(v));
  EXPECT_DEATH(t.World(v), "alternatives");
}


TEST(UncertainTreeDeathTest, EmptyAlternativesRejected) {
  UncertainBinaryTree t;
  EXPECT_DEATH(t.AddLeaf({}), "CHECK failed");
}

TEST(TreeDecompositionDeathTest, SecondRootRejected) {
  TreeDecomposition td;
  td.AddBag({0}, kInvalidBag);
  EXPECT_DEATH(td.AddBag({1}, kInvalidBag), "two roots");
}

}  // namespace
}  // namespace tud
