// Equivalence suite for the unified ProbabilityEngine interface: every
// adapter (and the AutoEngine planner's choice) must agree with
// exhaustive world enumeration on randomized circuits, with and
// without evidence pinning. Exact engines agree to float tolerance,
// sampling-based engines within their Monte-Carlo error.

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "inference/engine.h"
#include "inference/exhaustive.h"
#include "inference/hybrid.h"
#include "inference/junction_tree.h"
#include "util/rng.h"

namespace tud {
namespace {

BoolCircuit RandomCircuit(Rng& rng, uint32_t num_events, uint32_t num_gates,
                          GateId* root) {
  BoolCircuit c;
  std::vector<GateId> pool;
  for (EventId e = 0; e < num_events; ++e) pool.push_back(c.AddVar(e));
  for (uint32_t i = 0; i < num_gates; ++i) {
    GateId a = pool[rng.UniformInt(pool.size())];
    GateId b = pool[rng.UniformInt(pool.size())];
    switch (rng.UniformInt(3)) {
      case 0:
        pool.push_back(c.AddNot(a));
        break;
      case 1:
        pool.push_back(c.AddAnd(a, b));
        break;
      default:
        pool.push_back(c.AddOr(a, b));
        break;
    }
  }
  *root = pool.back();
  return c;
}

EventRegistry RandomRegistry(Rng& rng, uint32_t num_events) {
  EventRegistry registry;
  for (uint32_t i = 0; i < num_events; ++i) {
    registry.Register("e" + std::to_string(i),
                      0.05 + 0.9 * rng.UniformDouble());
  }
  return registry;
}

// Ground truth for conditional queries: pin the evidence by restriction
// and enumerate the remaining events.
double ExactConditional(const BoolCircuit& circuit, GateId root,
                        const EventRegistry& registry,
                        const Evidence& evidence) {
  std::vector<std::optional<bool>> fixed(registry.size());
  for (const auto& [e, v] : evidence) fixed[e] = v;
  auto [restricted, restricted_root] = RestrictCircuit(circuit, root, fixed);
  return ExhaustiveProbability(restricted, restricted_root, registry);
}

class EngineEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineEquivalenceTest, ExactEnginesMatchEnumeration) {
  Rng rng(GetParam());
  GateId root;
  BoolCircuit c = RandomCircuit(rng, 7, 25, &root);
  EventRegistry registry = RandomRegistry(rng, 7);
  const double exact = ExhaustiveProbability(c, root, registry);

  ExhaustiveEngine exhaustive;
  JunctionTreeEngine junction_tree;
  JunctionTreeEngine junction_tree_seeded(/*seed_topological=*/true);
  BddEngine bdd;
  ConditioningEngine conditioning;
  AutoEngine auto_engine;
  ProbabilityEngine* engines[] = {&exhaustive,   &junction_tree,
                                  &junction_tree_seeded,
                                  &bdd,          &conditioning,
                                  &auto_engine};
  for (ProbabilityEngine* engine : engines) {
    EngineResult result = engine->Estimate(c, root, registry);
    EXPECT_NEAR(result.value, exact, 1e-9) << engine->name();
    EXPECT_EQ(result.error_bound, 0.0) << engine->name();
  }
}

TEST_P(EngineEquivalenceTest, SamplingEnginesConverge) {
  Rng rng(GetParam() + 100);
  GateId root;
  BoolCircuit c = RandomCircuit(rng, 8, 30, &root);
  EventRegistry registry = RandomRegistry(rng, 8);
  const double exact = ExhaustiveProbability(c, root, registry);

  SamplingEngine sampling(40000, GetParam() + 1);
  EngineResult sampled = sampling.Estimate(c, root, registry);
  EXPECT_NEAR(sampled.value, exact, 0.05);
  EXPECT_GT(sampled.error_bound, 0.0);
  EXPECT_EQ(sampled.stats.num_samples, 40000u);

  HybridEngine hybrid(/*target_width=*/2, /*max_core=*/4,
                      /*num_samples=*/4000, GetParam() + 1);
  EngineResult hybridised = hybrid.Estimate(c, root, registry);
  EXPECT_NEAR(hybridised.value, exact, 0.05);
}

TEST_P(EngineEquivalenceTest, EvidencePinningMatchesEnumeration) {
  Rng rng(GetParam() + 200);
  GateId root;
  BoolCircuit c = RandomCircuit(rng, 7, 25, &root);
  EventRegistry registry = RandomRegistry(rng, 7);
  const Evidence evidence = {{0, true}, {1, false}};
  const double exact = ExactConditional(c, root, registry, evidence);

  ExhaustiveEngine exhaustive;
  JunctionTreeEngine junction_tree;
  JunctionTreeEngine junction_tree_seeded(/*seed_topological=*/true);
  BddEngine bdd;
  ConditioningEngine conditioning;
  AutoEngine auto_engine;
  ProbabilityEngine* engines[] = {&exhaustive,   &junction_tree,
                                  &junction_tree_seeded,
                                  &bdd,          &conditioning,
                                  &auto_engine};
  for (ProbabilityEngine* engine : engines) {
    EngineResult result = engine->Estimate(c, root, registry, evidence);
    EXPECT_NEAR(result.value, exact, 1e-9) << engine->name();
  }

  SamplingEngine sampling(40000, GetParam() + 1);
  EXPECT_NEAR(sampling.Estimate(c, root, registry, evidence).value, exact,
              0.05);
  HybridEngine hybrid(2, 4, 4000, GetParam() + 1);
  EXPECT_NEAR(hybrid.Estimate(c, root, registry, evidence).value, exact,
              0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineEquivalenceTest,
                         ::testing::Range(0, 10));

TEST(AutoEngineTest, PicksExhaustiveOnTinyCones) {
  Rng rng(7);
  GateId root;
  BoolCircuit c = RandomCircuit(rng, 6, 15, &root);
  EventRegistry registry = RandomRegistry(rng, 6);
  AutoEngine engine;
  EngineResult result = engine.Estimate(c, root, registry);
  EXPECT_STREQ(result.engine, "exhaustive");
  EXPECT_NEAR(result.value, ExhaustiveProbability(c, root, registry), 1e-9);
}

TEST(AutoEngineTest, PicksBddOnMediumCones) {
  // 14 events: past the exhaustive cutoff (10), inside the BDD one (18).
  Rng rng(8);
  EventRegistry registry = RandomRegistry(rng, 14);
  BoolCircuit c;
  std::vector<GateId> clauses;
  for (EventId e = 0; e + 1 < 14; e += 2) {
    clauses.push_back(c.AddAnd(c.AddVar(e), c.AddVar(e + 1)));
  }
  GateId root = c.AddOr(std::move(clauses));
  AutoEngine engine;
  EngineResult result = engine.Estimate(c, root, registry);
  EXPECT_STREQ(result.engine, "bdd");
  EXPECT_GT(result.stats.bdd_nodes, 0u);
  EXPECT_NEAR(result.value, ExhaustiveProbability(c, root, registry), 1e-9);
}

TEST(AutoEngineTest, PicksJunctionTreeOnWideEventNarrowWidthCones) {
  // 24 events in a chain of ORs: too many to enumerate or compile, but
  // the primal graph is a path — message passing territory.
  EventRegistry registry;
  BoolCircuit c;
  GateId root = c.AddVar(registry.Register("e0", 0.5));
  for (EventId e = 1; e < 24; ++e) {
    root = c.AddOr(root, c.AddVar(registry.Register(
                             "e" + std::to_string(e), 0.1)));
  }
  AutoEngine engine;
  EngineResult result = engine.Estimate(c, root, registry);
  EXPECT_STREQ(result.engine, "junction_tree");
  // P(OR of independents) = 1 - prod(1 - p_e).
  double expected = 1.0;
  for (EventId e = 0; e < 24; ++e) {
    expected *= 1.0 - registry.probability(e);
  }
  EXPECT_NEAR(result.value, 1.0 - expected, 1e-9);
}

TEST(AutoEngineTest, HandedOffDecompositionIsBitIdentical) {
  // The planner's width estimate is a JunctionTreeAnalysis that it hands
  // to the junction-tree plan it builds; the engine computing its own
  // decomposition runs the exact same Analyze+Build path, so the two
  // results must be bit-identical (not just within tolerance).
  AutoEngine::Limits limits;
  limits.exhaustive_max_events = 0;  // Force the planner past the small
  limits.bdd_max_events = 0;         // cones straight to message passing.
  for (int seed = 0; seed < 10; ++seed) {
    Rng rng(seed + 600);
    GateId root;
    BoolCircuit c = RandomCircuit(rng, 9, 45, &root);
    EventRegistry registry = RandomRegistry(rng, 9);
    AutoEngine auto_engine(limits);
    JunctionTreeEngine direct;
    EngineResult handed = auto_engine.Estimate(c, root, registry);
    EngineResult computed = direct.Estimate(c, root, registry);
    ASSERT_STREQ(handed.engine, "junction_tree") << "seed " << seed;
    EXPECT_EQ(handed.value, computed.value) << "seed " << seed;
    EXPECT_EQ(handed.stats.width, computed.stats.width);
    EXPECT_EQ(handed.stats.num_bags, computed.stats.num_bags);
    EXPECT_EQ(handed.stats.num_gates, computed.stats.num_gates);
  }
}

TEST(AutoEngineTest, WidthEstimateMatchesPlanAnalysis) {
  // The MinDegreeWidth probe must agree with the width the built plan
  // reports whenever the min-degree order is the one accepted.
  Rng rng(77);
  GateId root;
  BoolCircuit c = RandomCircuit(rng, 8, 40, &root);
  JunctionTreeAnalysis analysis = JunctionTreeAnalysis::Analyze(c, root);
  ASSERT_FALSE(analysis.trivial());
  const int estimate = analysis.MinDegreeWidth();
  JunctionTreePlan plan = JunctionTreePlan::Build(std::move(analysis));
  if (estimate <= 10) {  // Below the accept threshold no fallback runs.
    EXPECT_EQ(plan.width(), estimate);
  } else {
    EXPECT_LE(plan.width(), estimate);
  }
}

TEST(SeededJunctionTreeTest, MatchesGenericOrder) {
  for (int seed = 0; seed < 10; ++seed) {
    Rng rng(seed + 400);
    GateId root;
    BoolCircuit c = RandomCircuit(rng, 8, 40, &root);
    EventRegistry registry = RandomRegistry(rng, 8);
    EngineStats generic_stats, seeded_stats;
    double generic =
        JunctionTreeProbability(c, root, registry, &generic_stats);
    double seeded = JunctionTreeProbabilitySeeded(c, root, registry, {},
                                                  &seeded_stats);
    EXPECT_NEAR(seeded, generic, 1e-9);
    // The fallback caps the seeded width at the generic path's accept
    // threshold, so seeding can never make inference blow up.
    EXPECT_LE(seeded_stats.width, std::max(generic_stats.width, 10));
  }
}

}  // namespace
}  // namespace tud
