// Fault-injected stress tests for the serving runtime (satellite of the
// resource-governance PR): with TUD_FAULT_INJECTION compiled in, the
// hooks in PlanScratch::Acquire / JunctionTreePlan::Execute* /
// BudgetMeter::Charge inject allocation failures, per-bag delays and
// forced cancellation points. The contracts under fire:
//  - an injected std::bad_alloc fails exactly the query that hit it
//    (its future rethrows); the worker survives, every other future
//    resolves to the exact sequential bits, and the session keeps
//    serving correctly once the faults stop;
//  - forced cancellation trips only governed queries (ungoverned
//    execution never touches a BudgetMeter) and surfaces as a typed
//    kCancelled result, never an exception;
//  - an EpochManager writer publishing snapshots under reader-side
//    delays and faults never hangs a reader, and every successful
//    answer still matches some published epoch exactly;
//  - ServingSession / TaskScheduler shutdown with in-flight and queued
//    work under per-bag delays resolves every future (no hang, no
//    leak — ASan and TSan run this file in CI).
//
// Every test skips when the hooks are compiled out (default build).

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <new>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "incremental/epoch.h"
#include "incremental/incremental_session.h"
#include "inference/junction_tree.h"
#include "queries/query_session.h"
#include "serving/server.h"
#include "uncertain/c_instance.h"
#include "uncertain/tid_instance.h"
#include "util/budget.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace tud {
namespace {

using serving::QueryOptions;
using serving::ServingOptions;
using serving::ServingSession;

constexpr uint64_t kGenerousCells = uint64_t{1} << 40;

struct LadderFixture {
  QuerySession session;
  std::vector<GateId> lineages;
  std::vector<double> expected;
};

LadderFixture MakeLadder(uint32_t rungs, uint32_t num_lineages) {
  Rng rng(11);
  TidInstance tid = workloads::LadderTid(rng, rungs);
  LadderFixture f{QuerySession::FromCInstance(tid.ToPcInstance()), {}, {}};
  for (uint32_t i = 0; i < num_lineages; ++i) {
    uint32_t source = i % 3;
    uint32_t target = 2 * rungs - 2 - (i % 5);
    if (source == target) target = 2 * rungs - 2;
    f.lineages.push_back(f.session.ReachabilityLineage(0, source, target));
  }
  // Ground truth before any fault is armed.
  for (GateId lineage : f.lineages) {
    f.expected.push_back(JunctionTreeProbability(
        f.session.pcc().circuit(), lineage, f.session.pcc().events()));
  }
  return f;
}

// Injected allocation failures fail exactly the queries that hit them —
// the future rethrows bad_alloc, the worker survives (failed_tasks
// counts it), every untouched future is bit-identical, and the session
// serves perfectly again once the scope ends.
TEST(FaultInjectionTest, AllocFailuresFailOnlyTheirQueries) {
  if (!fault::kEnabled) GTEST_SKIP() << "built without TUD_FAULT_INJECTION";
  LadderFixture f = MakeLadder(/*rungs=*/12, /*num_lineages=*/6);
  ServingOptions options;
  options.num_threads = 2;
  ServingSession serving(f.session.pcc().circuit(), f.session.pcc().events(),
                         options);
  // Warm every plan first: the faults under test are execution-time
  // arena faults, not cold-build faults.
  for (GateId lineage : f.lineages) serving.Prewarm(lineage);

  constexpr size_t kQueries = 240;
  size_t failed = 0, ok = 0;
  {
    fault::Config config;
    config.alloc_failure_probability = 0.2;
    config.seed = 7;
    fault::ScopedFaultInjection scope(config);

    std::vector<std::future<EngineResult>> futures;
    futures.reserve(kQueries);
    for (size_t q = 0; q < kQueries; ++q)
      futures.push_back(serving.Submit(f.lineages[q % f.lineages.size()]));
    serving.Drain();

    for (size_t q = 0; q < kQueries; ++q) {
      try {
        EngineResult r = futures[q].get();
        ASSERT_EQ(r.status, EngineStatus::kOk);
        // A query the fault missed is untouched: exact bits.
        EXPECT_EQ(r.value, f.expected[q % f.lineages.size()]) << "query " << q;
        ++ok;
      } catch (const std::bad_alloc&) {
        ++failed;
      }
    }
    EXPECT_EQ(fault::AllocationFailures(), failed);
  }
  // At p=0.2 over 240 queries both outcomes occur (deterministic seed).
  EXPECT_GT(failed, 0u);
  EXPECT_GT(ok, 0u);
  EXPECT_EQ(serving.failed_tasks(), failed);

  // The workers survived their queries' failures: the session serves
  // every lineage exactly once the faults are gone.
  std::vector<std::future<EngineResult>> after;
  for (GateId lineage : f.lineages) after.push_back(serving.Submit(lineage));
  serving.Drain();
  for (size_t i = 0; i < after.size(); ++i) {
    EngineResult r = after[i].get();
    EXPECT_EQ(r.status, EngineStatus::kOk);
    EXPECT_EQ(r.value, f.expected[i]);
  }
  EXPECT_EQ(serving.failed_tasks(), failed);  // No new failures.
}

// Forced cancellation points trip only governed execution: a governed
// query's BudgetMeter polls the hook at bag granularity and returns a
// typed kCancelled; ungoverned queries never construct a meter and stay
// bit-exact even at cancel_probability = 1.
TEST(FaultInjectionTest, ForcedCancelTripsOnlyGovernedQueries) {
  if (!fault::kEnabled) GTEST_SKIP() << "built without TUD_FAULT_INJECTION";
  LadderFixture f = MakeLadder(12, 4);
  ServingOptions options;
  options.num_threads = 2;
  ServingSession serving(f.session.pcc().circuit(), f.session.pcc().events(),
                         options);
  for (GateId lineage : f.lineages) serving.Prewarm(lineage);

  fault::Config config;
  config.cancel_probability = 1.0;
  config.seed = 3;
  fault::ScopedFaultInjection scope(config);

  QueryOptions governed;
  governed.max_table_cells = kGenerousCells;  // Governed, generous cap.
  for (size_t i = 0; i < f.lineages.size(); ++i) {
    EngineResult g =
        serving.Submit(f.lineages[i], /*evidence=*/{}, governed).get();
    EXPECT_EQ(g.status, EngineStatus::kCancelled) << "lineage " << i;
    EXPECT_EQ(g.error_bound, 1.0);

    EngineResult u = serving.Submit(f.lineages[i]).get();
    EXPECT_EQ(u.status, EngineStatus::kOk);
    EXPECT_EQ(u.value, f.expected[i]);
  }
}

// Epoch churn under fire: a writer keeps publishing snapshots while
// readers run with per-bag delays (widening the retirement race window)
// and a small forced-cancel probability on governed reads. No reader
// hangs, every future resolves, and every kOk answer matches some
// published epoch bit-exactly. CI runs this under ASan and TSan — a
// leaked snapshot or a data race in retirement fails the job.
TEST(FaultInjectionTest, EpochChurnUnderDelayAndForcedCancel) {
  if (!fault::kEnabled) GTEST_SKIP() << "built without TUD_FAULT_INJECTION";
  constexpr uint32_t kRungs = 10;
  constexpr uint64_t kEpochs = 12;
  Rng rng(91);
  TidInstance tid = workloads::LadderTid(rng, kRungs);
  QuerySession session = QuerySession::FromCInstance(tid.ToPcInstance());
  incremental::IncrementalSession inc(session);
  const incremental::QueryId q0 =
      inc.RegisterReachability(0, 0, 2 * kRungs - 2);
  (void)q0;

  incremental::EpochManager epochs;
  std::vector<double> expected(kEpochs + 1, 0.0);
  std::atomic<uint64_t> frontier{0};
  auto publish = [&](uint64_t k) {
    expected[k] = inc.Probability(0).value;
    frontier.store(k, std::memory_order_release);
    ASSERT_EQ(inc.PublishSnapshot(epochs), k);
  };
  publish(1);

  ServingOptions options;
  options.num_threads = 2;
  serving::EpochedServingSession serving(epochs, options);

  fault::Config config;
  config.per_bag_delay_us = 20;
  config.cancel_probability = 0.02;
  config.seed = 5;
  fault::ScopedFaultInjection scope(config);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> answered{0};
  std::vector<std::thread> readers;
  for (unsigned t = 0; t < 3; ++t)
    readers.emplace_back([&, t] {
      QueryOptions governed;
      governed.max_table_cells = kGenerousCells;
      while (!done.load(std::memory_order_acquire)) {
        // Governed on one thread (forced cancels fire), ungoverned on
        // the others (delays only).
        EngineResult r = t == 0 ? serving.Submit(0, {}, governed).get()
                                : serving.Submit(0).get();
        if (r.status == EngineStatus::kCancelled) continue;
        ASSERT_EQ(r.status, EngineStatus::kOk);
        const uint64_t fr = frontier.load(std::memory_order_acquire);
        bool matched = false;
        for (uint64_t k = 1; k <= fr && !matched; ++k)
          matched = r.value == expected[k];
        EXPECT_TRUE(matched)
            << "value " << r.value << " matches no epoch <= " << fr;
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });

  for (uint64_t k = 2; k <= kEpochs; ++k) {
    const size_t num_events = session.pcc().events().size();
    inc.UpdateProbability(static_cast<EventId>(k % num_events),
                          0.05 + 0.9 * static_cast<double>(k) / kEpochs);
    publish(k);
  }
  done.store(true, std::memory_order_release);
  for (auto& thread : readers) thread.join();
  serving.Drain();
  EXPECT_GT(answered.load(), 0u);
  EXPECT_EQ(inc.stats().epochs_published, kEpochs);
}

// Shutdown with in-flight *and* queued work while every bag pays an
// injected delay: the session destructor must drain — every future
// becomes ready with either a value or an exception, and the join never
// hangs (the test completing is the assertion; ASan owns leak checking).
TEST(FaultInjectionTest, ShutdownWithInFlightAndQueuedWork) {
  if (!fault::kEnabled) GTEST_SKIP() << "built without TUD_FAULT_INJECTION";
  LadderFixture f = MakeLadder(10, 4);

  fault::Config config;
  config.per_bag_delay_us = 100;  // Guarantees a deep queue at shutdown.
  config.alloc_failure_probability = 0.05;
  config.seed = 13;
  fault::ScopedFaultInjection scope(config);

  std::vector<std::future<EngineResult>> futures;
  {
    ServingOptions options;
    options.num_threads = 2;
    ServingSession serving(f.session.pcc().circuit(),
                           f.session.pcc().events(), options);
    for (size_t q = 0; q < 60; ++q)
      futures.push_back(serving.Submit(f.lineages[q % f.lineages.size()]));
    // No Drain(): the destructor meets queued + in-flight work head on.
  }
  size_t ok = 0;
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    try {
      EngineResult r = future.get();
      EXPECT_EQ(r.status, EngineStatus::kOk);
      ++ok;
    } catch (const std::bad_alloc&) {
      // Injected per-query failure: contained, see above.
    } catch (const std::runtime_error&) {
      // Shutdown rejection: typed, not a hang.
    }
  }
  EXPECT_GT(ok, 0u);  // The destructor drained real work, not nothing.
}

// Same shutdown contract one layer down: a raw TaskScheduler destroyed
// with tasks still queued behind a slow task must run-or-reject every
// one of them (Submit returning false after shutdown is the only other
// allowed outcome) and join cleanly.
TEST(FaultInjectionTest, SchedulerShutdownRunsOrRejectsEverything) {
  if (!fault::kEnabled) GTEST_SKIP() << "built without TUD_FAULT_INJECTION";
  std::atomic<uint64_t> ran{0};
  uint64_t accepted = 0;
  {
    serving::TaskScheduler::Options options;
    options.num_threads = 2;
    serving::TaskScheduler scheduler(options);
    for (int i = 0; i < 200; ++i) {
      if (scheduler.Submit([&ran] {
            fault::MaybeDelayBag();
            ran.fetch_add(1, std::memory_order_relaxed);
          })) {
        ++accepted;
      }
    }
  }
  // The destructor drained: every accepted task ran exactly once.
  EXPECT_EQ(ran.load(), accepted);
  EXPECT_EQ(accepted, 200u);
}

}  // namespace
}  // namespace tud
