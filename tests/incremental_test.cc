// The incremental maintenance subsystem's contracts:
//  - DirtyLog generations: collect-since semantics, compaction, and the
//    fell-behind-compaction miss;
//  - JunctionTreePlan::ExecuteDelta is bit-identical to a full Execute
//    under any sequence of probability updates, falls back to a full
//    pass exactly when cold / evidence changed / the dirty frontier
//    exceeds the threshold, and skips work when nothing moved;
//  - IncrementalSession: randomized update-vs-full-rebuild equivalence
//    for probability-only streams (bit-identical to a fresh session)
//    and probability+structural mixes (bit-identical to a full pass on
//    the live state, rounding-equal to a fresh session, whose
//    decomposition may legitimately differ);
//  - structural updates take the repair path, never a full
//    decomposition rebuild, unless the width bound forces it (pinned
//    through the stats counters);
//  - ConcurrentPlanCache::Invalidate/Clear republish without the
//    dropped plans while previously returned pointers stay executable
//    (retire-not-free);
//  - EpochManager publication: stamped epochs, snapshot immutability,
//    and retire-after-last-reader via the shared_ptr refcount.

#include <cstdint>
#include <memory>
#include <vector>

#include "circuits/circuit_patch.h"
#include "gtest/gtest.h"
#include "incremental/dirty_log.h"
#include "incremental/epoch.h"
#include "incremental/incremental_session.h"
#include "inference/junction_tree.h"
#include "queries/query_session.h"
#include "uncertain/c_instance.h"
#include "uncertain/tid_instance.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace tud {
namespace {

using incremental::DirtyLog;
using incremental::EpochManager;
using incremental::IncrementalOptions;
using incremental::IncrementalSession;
using incremental::InsertedFact;
using incremental::QueryId;
using incremental::SessionSnapshot;

// ---------------------------------------------------------------------------
// DirtyLog
// ---------------------------------------------------------------------------

TEST(DirtyLogTest, CollectSinceAndCompaction) {
  DirtyLog log;
  EXPECT_EQ(log.generation(), 0u);

  log.Mark(3);
  log.Mark(7);
  const DirtyLog::Generation mid = log.generation();
  EXPECT_EQ(mid, 2u);
  log.Mark(3);  // Duplicates are preserved.

  std::vector<EventId> out;
  ASSERT_TRUE(log.CollectSince(0, &out));
  EXPECT_EQ(out, (std::vector<EventId>{3, 7, 3}));

  out.clear();
  ASSERT_TRUE(log.CollectSince(mid, &out));
  EXPECT_EQ(out, (std::vector<EventId>{3}));

  // Collecting at the current generation sees nothing.
  out.clear();
  ASSERT_TRUE(log.CollectSince(log.generation(), &out));
  EXPECT_TRUE(out.empty());

  // Compaction drops the consumed prefix but keeps generations stable.
  log.CompactBelow(mid);
  EXPECT_EQ(log.retained(), 1u);
  EXPECT_EQ(log.generation(), 3u);
  out.clear();
  ASSERT_TRUE(log.CollectSince(mid, &out));
  EXPECT_EQ(out, (std::vector<EventId>{3}));

  // A cursor below the compacted base is a miss: the caller must take
  // a full pass.
  EXPECT_FALSE(log.CollectSince(0, &out));

  // Compacting past the end clamps.
  log.CompactBelow(100);
  EXPECT_EQ(log.retained(), 0u);
  EXPECT_EQ(log.generation(), 3u);
}

// ---------------------------------------------------------------------------
// ExecuteDelta
// ---------------------------------------------------------------------------

struct LadderFixture {
  QuerySession session;
  GateId root;

  static LadderFixture Make(uint32_t rungs, uint64_t seed) {
    Rng rng(seed);
    TidInstance tid = workloads::LadderTid(rng, rungs);
    LadderFixture f{QuerySession::FromCInstance(tid.ToPcInstance()),
                    kInvalidGate};
    f.root = f.session.ReachabilityLineage(0, 0, 2 * rungs - 2);
    return f;
  }
};

TEST(ExecuteDeltaTest, BitIdenticalToFullExecuteUnderUpdates) {
  LadderFixture f = LadderFixture::Make(12, 17);
  EventRegistry& events = f.session.pcc().events();
  const JunctionTreePlan plan =
      JunctionTreePlan::Build(f.session.pcc().circuit(), f.root);

  Rng rng(29);
  PlanDeltaState state;
  std::vector<EventId> dirty;
  for (int round = 0; round < 40; ++round) {
    dirty.clear();
    const int updates = 1 + static_cast<int>(rng.UniformDouble() * 3);
    for (int u = 0; u < updates; ++u) {
      const EventId e = static_cast<EventId>(rng.UniformDouble() *
                                             static_cast<double>(
                                                 events.size()));
      events.set_probability(e, rng.UniformDouble());
      dirty.push_back(e);
    }
    // full_fraction = 1 pins the delta path: on a path-shaped ladder
    // tree a deep dirty bag's root walk can legitimately cross the
    // default 50% threshold, and this test is about the delta
    // machinery, not the fallback policy.
    const double incremental_value =
        plan.ExecuteDelta(events, {}, dirty, state, nullptr,
                          /*full_fraction=*/1.0);
    const double full_value = plan.Execute(events);
    EXPECT_EQ(incremental_value, full_value) << "round " << round;
  }
  // The stream above must actually have exercised the delta path.
  EXPECT_EQ(state.full_passes, 1u);
  EXPECT_EQ(state.delta_passes, 39u);
  EXPECT_GT(state.bags_recomputed, 0u);
}

TEST(ExecuteDeltaTest, BitIdenticalUnderEvidence) {
  LadderFixture f = LadderFixture::Make(10, 19);
  EventRegistry& events = f.session.pcc().events();
  const JunctionTreePlan plan =
      JunctionTreePlan::Build(f.session.pcc().circuit(), f.root);
  const Evidence evidence = {{0, true}, {3, false}};

  PlanDeltaState state;
  Rng rng(31);
  for (int round = 0; round < 10; ++round) {
    const EventId e = static_cast<EventId>(
        rng.UniformDouble() * static_cast<double>(events.size()));
    events.set_probability(e, rng.UniformDouble());
    EXPECT_EQ(plan.ExecuteDelta(events, evidence, {e}, state, nullptr,
                                /*full_fraction=*/1.0),
              plan.Execute(events, evidence));
  }
  EXPECT_EQ(state.full_passes, 1u);

  // An update under a pinned event changes nothing: no bag recomputed.
  const uint64_t bags_before = state.bags_recomputed;
  events.set_probability(0, 0.123);
  EXPECT_EQ(plan.ExecuteDelta(events, evidence, {0}, state, nullptr,
                              /*full_fraction=*/1.0),
            plan.Execute(events, evidence));
  EXPECT_EQ(state.bags_recomputed, bags_before);

  // An evidence change forces a full pass.
  const Evidence other = {{0, false}};
  EXPECT_EQ(plan.ExecuteDelta(events, other, {}, state, nullptr,
                              /*full_fraction=*/1.0),
            plan.Execute(events, other));
  EXPECT_EQ(state.full_passes, 2u);
}

TEST(ExecuteDeltaTest, ThresholdFallbackAndNoopSkip) {
  LadderFixture f = LadderFixture::Make(10, 23);
  EventRegistry& events = f.session.pcc().events();
  const JunctionTreePlan plan =
      JunctionTreePlan::Build(f.session.pcc().circuit(), f.root);

  PlanDeltaState state;
  plan.ExecuteDelta(events, {}, {}, state);  // Warm: one full pass.
  EXPECT_EQ(state.full_passes, 1u);

  // A real change with full_fraction = 0 always exceeds the threshold.
  events.set_probability(2, 0.9);
  EngineStats stats;
  EXPECT_EQ(plan.ExecuteDelta(events, {}, {2}, state, &stats,
                              /*full_fraction=*/0.0),
            plan.Execute(events));
  EXPECT_EQ(state.full_passes, 2u);

  // The same change with full_fraction = 1 takes the delta path and
  // recomputes strictly fewer bags than the tree holds.
  events.set_probability(2, 0.1);
  EXPECT_EQ(plan.ExecuteDelta(events, {}, {2}, state, &stats,
                              /*full_fraction=*/1.0),
            plan.Execute(events));
  EXPECT_EQ(state.delta_passes, 1u);
  EXPECT_GT(stats.bags_visited, 0u);
  EXPECT_LT(stats.bags_visited, plan.num_bags());

  // Marking an event dirty without changing its value is a no-op pass.
  const double unchanged = events.probability(4);
  events.set_probability(4, unchanged);
  EXPECT_EQ(plan.ExecuteDelta(events, {}, {4}, state, &stats),
            plan.Execute(events));
  EXPECT_EQ(stats.bags_visited, 0u);
  EXPECT_EQ(state.full_passes, 2u);
}

// ---------------------------------------------------------------------------
// IncrementalSession: randomized update-vs-rebuild equivalence
// ---------------------------------------------------------------------------

TEST(IncrementalEquivalenceTest, ProbabilityOnlyStreamMatchesFreshSession) {
  const uint32_t rungs = 16;
  Rng gen(41);
  TidInstance tid = workloads::LadderTid(gen, rungs);
  const CInstance pc = tid.ToPcInstance();

  QuerySession session = QuerySession::FromCInstance(pc);
  IncrementalSession inc(session);
  const QueryId q = inc.RegisterReachability(0, 0, 2 * rungs - 2);

  Rng rng(43);
  for (int round = 0; round < 15; ++round) {
    const int updates = 1 + static_cast<int>(rng.UniformDouble() * 4);
    for (int u = 0; u < updates; ++u) {
      const EventId e = static_cast<EventId>(
          rng.UniformDouble() *
          static_cast<double>(session.pcc().events().size()));
      inc.UpdateProbability(e, rng.UniformDouble());
    }
    const EngineResult result = inc.Probability(q);

    // A fresh session replays the identical construction over the
    // updated probabilities: same circuit, same root, same plan — the
    // incremental answer must be bit-identical, not just close.
    QuerySession fresh = QuerySession::FromCInstance(pc);
    for (EventId e = 0; e < fresh.pcc().events().size(); ++e) {
      fresh.pcc().events().set_probability(
          e, session.pcc().events().probability(e));
    }
    const GateId fresh_root = fresh.ReachabilityLineage(0, 0, 2 * rungs - 2);
    ASSERT_EQ(fresh_root, inc.root(q));
    EXPECT_EQ(result.value, JunctionTreeProbability(fresh.pcc().circuit(),
                                                    fresh_root,
                                                    fresh.pcc().events()))
        << "round " << round;

    // The session-level batch surface agrees bit-identically too.
    const std::vector<EngineResult> live =
        session.ProbabilityBatch({inc.root(q)});
    const std::vector<EngineResult> rebuilt =
        fresh.ProbabilityBatch({fresh_root});
    ASSERT_EQ(live.size(), rebuilt.size());
    EXPECT_EQ(live[0].value, rebuilt[0].value);
  }
  // The stream must have been served incrementally, not by full passes.
  EXPECT_EQ(inc.stats().full_executes, 1u);
  EXPECT_GE(inc.stats().delta_executes, 14u);
  EXPECT_GT(inc.stats().probability_updates, 0u);
}

TEST(IncrementalEquivalenceTest, StructuralMixMatchesRebuild) {
  const uint32_t rungs = 10;
  Rng gen(47);
  TidInstance tid = workloads::LadderTid(gen, rungs);
  QuerySession session = QuerySession::FromCInstance(tid.ToPcInstance());
  IncrementalSession inc(session);
  const QueryId q = inc.RegisterReachability(0, 0, 2 * rungs - 2);

  Rng rng(53);
  std::vector<InsertedFact> inserted;
  uint32_t next_vertex = 2 * rungs;  // First value beyond the ladder.
  for (int round = 0; round < 12; ++round) {
    const double pick = rng.UniformDouble();
    if (pick < 0.4) {
      const EventId e = static_cast<EventId>(
          rng.UniformDouble() *
          static_cast<double>(session.pcc().events().size()));
      inc.UpdateProbability(e, rng.UniformDouble());
    } else if (pick < 0.7 || inserted.empty()) {
      // Mix covered inserts (between existing rail vertices) with
      // cone-growing ones (fresh vertex hanging off the ladder).
      std::vector<Value> args;
      if (rng.UniformDouble() < 0.5) {
        const uint32_t base =
            static_cast<uint32_t>(rng.UniformDouble() * (2 * rungs - 2));
        args = {base, base + 2 < 2 * rungs ? base + 2 : base + 1};
      } else {
        const uint32_t anchor =
            static_cast<uint32_t>(rng.UniformDouble() * (2 * rungs - 1));
        args = {anchor, next_vertex++};
      }
      inserted.push_back(
          inc.InsertFact(0, args, 0.2 + 0.6 * rng.UniformDouble()));
    } else {
      const size_t pos = static_cast<size_t>(rng.UniformDouble() *
                                             static_cast<double>(
                                                 inserted.size()));
      inc.DeleteFact(inserted[pos].fact);
      inserted.erase(inserted.begin() + pos);
    }

    const EngineResult result = inc.Probability(q);

    // Machinery pin: the incremental answer is bit-identical to a full
    // message pass on the live state (same circuit, root, registry).
    const JunctionTreePlan full_plan =
        JunctionTreePlan::Build(session.pcc().circuit(), inc.root(q));
    EXPECT_EQ(result.value, full_plan.Execute(session.pcc().events()))
        << "round " << round;

    // Rebuild cross-check: a fresh session over a copy of the live
    // instance derives its own decomposition (legitimately different
    // from the repaired one), so agreement is to rounding.
    QuerySession fresh(session.pcc());
    const GateId fresh_root = fresh.ReachabilityLineage(0, 0, 2 * rungs - 2);
    EXPECT_NEAR(result.value,
                JunctionTreeProbability(fresh.pcc().circuit(), fresh_root,
                                        fresh.pcc().events()),
                1e-9)
        << "round " << round;
  }
  EXPECT_GT(inc.stats().inserts, 0u);
  EXPECT_GT(inc.stats().decomposition_repairs, 0u);
  EXPECT_GT(inc.stats().patched_gates, 0u);
}

// ---------------------------------------------------------------------------
// IncrementalSession: structural-path pins
// ---------------------------------------------------------------------------

TEST(IncrementalSessionTest, SingleInsertTakesRepairPathNotRebuild) {
  Rng gen(59);
  TidInstance tid = workloads::LadderTid(gen, 12);
  QuerySession session = QuerySession::FromCInstance(tid.ToPcInstance());
  IncrementalSession inc(session);
  inc.RegisterReachability(0, 0, 22);

  // Covered insert: duplicate an existing edge's endpoints, whose
  // Gaifman clique some bag already covers.
  const std::vector<Value> existing_args =
      session.pcc().instance().fact(0).args;
  inc.InsertFact(0, existing_args, 0.5);
  EXPECT_EQ(inc.stats().decomposition_repairs, 1u);
  EXPECT_EQ(inc.stats().decomposition_rebuilds, 0u);

  // Cone-growing insert (fresh vertex): still the repair path — the
  // patched elimination order keeps the ladder narrow.
  inc.InsertFact(0, {0, 2 * 12}, 0.5);
  EXPECT_EQ(inc.stats().decomposition_repairs, 2u);
  EXPECT_EQ(inc.stats().decomposition_rebuilds, 0u);
  EXPECT_EQ(inc.stats().inserts, 2u);
}

TEST(IncrementalSessionTest, NegativeWidthSlackForcesRebuild) {
  Rng gen(61);
  TidInstance tid = workloads::LadderTid(gen, 8);
  QuerySession session = QuerySession::FromCInstance(tid.ToPcInstance());
  IncrementalOptions options;
  options.repair_width_slack = -1;  // No repaired width can qualify.
  IncrementalSession inc(session, options);
  inc.RegisterReachability(0, 0, 14);

  // A new-vertex insert cannot use the covered path, and the slack
  // rejects the order-patch: the full order search must rerun.
  inc.InsertFact(0, {0, 16}, 0.5);
  EXPECT_EQ(inc.stats().decomposition_rebuilds, 1u);
  EXPECT_EQ(inc.stats().decomposition_repairs, 0u);
}

TEST(IncrementalSessionTest, DeleteIsTombstonedProbabilityZero) {
  Rng gen(67);
  TidInstance tid = workloads::LadderTid(gen, 8);
  QuerySession session = QuerySession::FromCInstance(tid.ToPcInstance());
  IncrementalSession inc(session);
  const QueryId q = inc.RegisterReachability(0, 0, 14);
  const double before = inc.Probability(q).value;

  InsertedFact ins = inc.InsertFact(0, {0, 2}, 0.7);
  inc.DeleteFact(ins.fact);
  EXPECT_EQ(session.pcc().events().probability(ins.event), 0.0);
  EXPECT_TRUE(inc.patch().IsTombstoned(ins.event));
  EXPECT_EQ(inc.stats().deletes, 1u);

  // Deleting the inserted fact restores the original answer exactly:
  // probability 0 is bit-for-bit the pinned-false table (1.0 / 0.0).
  const double after = inc.Probability(q).value;
  const JunctionTreePlan plan =
      JunctionTreePlan::Build(session.pcc().circuit(), inc.root(q));
  EXPECT_EQ(after,
            plan.Execute(session.pcc().events(), {{ins.event, false}}));
  EXPECT_NEAR(after, before, 1e-12);
}

TEST(IncrementalSessionTest, UntouchedQueryKeepsPlanAcrossInsert) {
  Rng gen(71);
  TidInstance tid = workloads::LadderTid(gen, 12);
  QuerySession session = QuerySession::FromCInstance(tid.ToPcInstance());
  IncrementalSession inc(session);
  const QueryId q = inc.RegisterReachability(0, 0, 22);
  inc.Probability(q);
  const GateId root_before = inc.root(q);
  const size_t builds_before = inc.plan_cache().builds();

  // A fact in a far-away fresh component cannot change this query's
  // lineage: hash-consing returns the same root, the compiled plan and
  // delta state survive, and the next query is still a delta pass.
  inc.InsertFact(0, {100, 101}, 0.5);
  EXPECT_EQ(inc.root(q), root_before);
  EXPECT_EQ(inc.stats().lineage_recomputes, 0u);
  EXPECT_EQ(inc.stats().plans_invalidated, 0u);
  inc.Probability(q);
  EXPECT_EQ(inc.plan_cache().builds(), builds_before);
  EXPECT_EQ(inc.stats().full_executes, 1u);
  EXPECT_EQ(inc.stats().delta_executes, 1u);
}

// ---------------------------------------------------------------------------
// ConcurrentPlanCache invalidation
// ---------------------------------------------------------------------------

TEST(ConcurrentPlanCacheTest, InvalidateRepublishesWithoutTheRoot) {
  LadderFixture f = LadderFixture::Make(10, 73);
  const GateId r1 = f.root;
  const GateId r2 = f.session.ReachabilityLineage(0, 1, 17);
  ASSERT_NE(r1, r2);
  const BoolCircuit& circuit = f.session.pcc().circuit();
  const EventRegistry& events = f.session.pcc().events();

  ConcurrentPlanCache cache;
  const JunctionTreePlan* p1 = cache.GetOrBuild(circuit, r1);
  const JunctionTreePlan* p2 = cache.GetOrBuild(circuit, r2);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.builds(), 2u);
  const double v1 = p1->Execute(events);

  cache.Invalidate(r1);
  EXPECT_EQ(cache.Lookup(r1), nullptr);
  EXPECT_EQ(cache.Lookup(r2), p2);
  EXPECT_EQ(cache.size(), 1u);
  // Retire-not-free: the invalidated plan pointer still executes.
  EXPECT_EQ(p1->Execute(events), v1);

  // Invalidating an absent root is a no-op (no republication).
  cache.Invalidate(r1);
  EXPECT_EQ(cache.size(), 1u);

  // The next request rebuilds.
  const JunctionTreePlan* rebuilt = cache.GetOrBuild(circuit, r1);
  EXPECT_EQ(cache.builds(), 3u);
  EXPECT_EQ(rebuilt->Execute(events), v1);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ConcurrentPlanCacheTest, ClearDropsEverythingRetireNotFree) {
  LadderFixture f = LadderFixture::Make(8, 79);
  const GateId r1 = f.root;
  const GateId r2 = f.session.ReachabilityLineage(0, 1, 13);
  const BoolCircuit& circuit = f.session.pcc().circuit();
  const EventRegistry& events = f.session.pcc().events();

  ConcurrentPlanCache cache;
  const JunctionTreePlan* p1 = cache.GetOrBuild(circuit, r1);
  const JunctionTreePlan* p2 = cache.GetOrBuild(circuit, r2);
  const double v1 = p1->Execute(events);
  const double v2 = p2->Execute(events);

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(r1), nullptr);
  EXPECT_EQ(cache.Lookup(r2), nullptr);
  EXPECT_EQ(p1->Execute(events), v1);
  EXPECT_EQ(p2->Execute(events), v2);
  cache.Clear();  // Idempotent on empty shards.
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------------
// EpochManager
// ---------------------------------------------------------------------------

TEST(EpochManagerTest, PublishStampsAndRetiresAfterLastReader) {
  EpochManager epochs;
  EXPECT_EQ(epochs.Current(), nullptr);
  EXPECT_EQ(epochs.current_epoch(), 0u);

  SessionSnapshot first;
  EXPECT_EQ(epochs.Publish(std::move(first)), 1u);
  std::shared_ptr<const SessionSnapshot> held = epochs.Current();
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->epoch, 1u);
  EXPECT_EQ(held->epoch_check, 1u);

  std::weak_ptr<const SessionSnapshot> watch = held;
  SessionSnapshot second;
  EXPECT_EQ(epochs.Publish(std::move(second)), 2u);
  EXPECT_EQ(epochs.Current()->epoch, 2u);

  // The superseded epoch survives while an in-flight reader holds it...
  EXPECT_FALSE(watch.expired());
  EXPECT_EQ(held->epoch, 1u);
  // ...and is reclaimed when the last reader drains.
  held.reset();
  EXPECT_TRUE(watch.expired());
}

TEST(EpochManagerTest, PublishedSnapshotServesQueries) {
  Rng gen(83);
  TidInstance tid = workloads::LadderTid(gen, 10);
  QuerySession session = QuerySession::FromCInstance(tid.ToPcInstance());
  IncrementalSession inc(session);
  const QueryId q = inc.RegisterReachability(0, 0, 18);
  const double live = inc.Probability(q).value;

  EpochManager epochs;
  EXPECT_EQ(inc.PublishSnapshot(epochs), 1u);
  std::shared_ptr<const SessionSnapshot> snap = epochs.Current();
  ASSERT_NE(snap, nullptr);
  ASSERT_EQ(snap->query_roots.size(), 1u);

  // The snapshot is prewarmed: the root's plan is already cached.
  const JunctionTreePlan* plan = snap->plans->Lookup(snap->query_roots[0]);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->Execute(*snap->registry), live);

  // Updates after publication do not leak into the snapshot.
  inc.UpdateProbability(0, 0.999);
  EXPECT_EQ(plan->Execute(*snap->registry), live);
  EXPECT_NE(inc.Probability(q).value, live);

  // The next epoch sees them.
  EXPECT_EQ(inc.PublishSnapshot(epochs), 2u);
  std::shared_ptr<const SessionSnapshot> snap2 = epochs.Current();
  const JunctionTreePlan* plan2 = snap2->plans->Lookup(snap2->query_roots[0]);
  ASSERT_NE(plan2, nullptr);
  EXPECT_EQ(plan2->Execute(*snap2->registry), inc.Probability(q).value);
  EXPECT_EQ(inc.stats().epochs_published, 2u);
}

// ---------------------------------------------------------------------------
// CircuitPatch
// ---------------------------------------------------------------------------

TEST(CircuitPatchTest, BatchesAndTombstones) {
  EventRegistry events;
  BoolCircuit circuit;
  const EventId a = events.Register("a", 0.5);
  const EventId b = events.Register("b", 0.5);
  CircuitPatch patch;

  patch.BeginBatch(circuit);
  const GateId ga = circuit.AddVar(a);
  const GateId gb = circuit.AddVar(b);
  circuit.AddAnd(ga, gb);
  EXPECT_EQ(patch.SealBatch(circuit), 3u);

  patch.BeginBatch(circuit);
  circuit.AddAnd(ga, gb);  // Hash-consed: nothing appended.
  EXPECT_EQ(patch.SealBatch(circuit), 0u);
  EXPECT_EQ(patch.appended_gates(), 3u);
  EXPECT_EQ(patch.num_batches(), 2u);

  patch.Tombstone(a);
  patch.Tombstone(a);  // Idempotent.
  EXPECT_TRUE(patch.IsTombstoned(a));
  EXPECT_FALSE(patch.IsTombstoned(b));
  EXPECT_EQ(patch.num_tombstones(), 1u);

  const Evidence merged = patch.MergedEvidence({{b, true}});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0], (std::pair<EventId, bool>{a, false}));
  EXPECT_EQ(merged[1], (std::pair<EventId, bool>{b, true}));
}

}  // namespace
}  // namespace tud
