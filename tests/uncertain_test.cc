#include "events/bool_formula.h"
#include "gtest/gtest.h"
#include "treedec/elimination.h"
#include "uncertain/c_instance.h"
#include "uncertain/pcc_instance.h"
#include "uncertain/tid_instance.h"
#include "uncertain/worlds.h"

namespace tud {
namespace {

Schema MakeRst() {
  Schema schema;
  schema.AddRelation("R", 1);
  schema.AddRelation("S", 2);
  schema.AddRelation("T", 1);
  return schema;
}

TEST(TidInstanceTest, BasicConstruction) {
  TidInstance tid(MakeRst());
  FactId f = tid.AddFact(0, {0}, 0.7);
  EXPECT_EQ(tid.NumFacts(), 1u);
  EXPECT_DOUBLE_EQ(tid.probability(f), 0.7);
}

TEST(TidInstanceTest, ConversionToPcInstance) {
  TidInstance tid(MakeRst());
  tid.AddFact(0, {0}, 0.7);
  tid.AddFact(1, {0, 1}, 0.2);
  CInstance pc = tid.ToPcInstance();
  EXPECT_EQ(pc.NumFacts(), 2u);
  EXPECT_EQ(pc.events().size(), 2u);
  EXPECT_DOUBLE_EQ(pc.events().probability(0), 0.7);
  // Fact i is annotated with event i.
  EXPECT_EQ(pc.annotation(0).kind(), BoolFormula::Kind::kVar);
  EXPECT_EQ(pc.annotation(0).var(), 0u);
}

TEST(TidInstanceDeathTest, RejectsBadProbability) {
  TidInstance tid(MakeRst());
  EXPECT_DEATH(tid.AddFact(0, {0}, 1.5), "CHECK failed");
}

// The paper's Table 1: trips annotated over events pods (PODS is in
// Melbourne) and stoc (STOC is in Portland).
class Table1Test : public ::testing::Test {
 protected:
  Table1Test() : ci_(MakeTripSchema()) {
    pods_ = ci_.events().Register("pods", 0.5);
    stoc_ = ci_.events().Register("stoc", 0.5);
    auto var = [](EventId e) { return BoolFormula::Var(e); };
    auto non = [](const BoolFormula& f) { return BoolFormula::Not(f); };
    // From, To encoded as dictionary values.
    cdg_ = 0;
    mel_ = 1;
    pdx_ = 2;
    trip_cdg_mel_ = ci_.AddFact(0, {cdg_, mel_}, var(pods_));
    trip_mel_cdg_ =
        ci_.AddFact(0, {mel_, cdg_},
                    BoolFormula::And(var(pods_), non(var(stoc_))));
    trip_mel_pdx_ = ci_.AddFact(
        0, {mel_, pdx_}, BoolFormula::And(var(pods_), var(stoc_)));
    trip_cdg_pdx_ = ci_.AddFact(
        0, {cdg_, pdx_}, BoolFormula::And(non(var(pods_)), var(stoc_)));
    trip_pdx_cdg_ = ci_.AddFact(0, {pdx_, cdg_}, var(stoc_));
  }

  static Schema MakeTripSchema() {
    Schema schema;
    schema.AddRelation("Trip", 2);
    return schema;
  }

  CInstance ci_;
  EventId pods_, stoc_;
  Value cdg_, mel_, pdx_;
  FactId trip_cdg_mel_, trip_mel_cdg_, trip_mel_pdx_, trip_cdg_pdx_,
      trip_pdx_cdg_;
};

TEST_F(Table1Test, WorldSemantics) {
  // World pods=1, stoc=0: go to Melbourne and back.
  Valuation v(2);
  v.set_value(pods_, true);
  Instance world = ci_.World(v);
  EXPECT_EQ(world.NumFacts(), 2u);
  EXPECT_TRUE(world.Contains(Fact{0, {cdg_, mel_}}));
  EXPECT_TRUE(world.Contains(Fact{0, {mel_, cdg_}}));

  // World pods=1, stoc=1: CDG -> MEL -> PDX -> CDG.
  v.set_value(stoc_, true);
  world = ci_.World(v);
  EXPECT_EQ(world.NumFacts(), 3u);
  EXPECT_TRUE(world.Contains(Fact{0, {mel_, pdx_}}));
  EXPECT_FALSE(world.Contains(Fact{0, {mel_, cdg_}}));
}

TEST_F(Table1Test, PossibilityAndCertainty) {
  EXPECT_TRUE(ci_.IsPossible(trip_cdg_mel_));
  EXPECT_FALSE(ci_.IsCertain(trip_cdg_mel_));
  // No trip is certain in this instance.
  for (FactId f = 0; f < ci_.NumFacts(); ++f) {
    EXPECT_FALSE(ci_.IsCertain(f)) << f;
  }
  // A contradictory annotation is impossible.
  FactId impossible = ci_.AddFact(
      0, {cdg_, cdg_},
      BoolFormula::And(BoolFormula::Var(pods_),
                       BoolFormula::Not(BoolFormula::Var(pods_))));
  EXPECT_FALSE(ci_.IsPossible(impossible));
  // A tautological annotation is certain.
  FactId certain = ci_.AddFact(
      0, {cdg_, cdg_},
      BoolFormula::Or(BoolFormula::Var(pods_),
                      BoolFormula::Not(BoolFormula::Var(pods_))));
  EXPECT_TRUE(ci_.IsCertain(certain));
}

TEST_F(Table1Test, EnumerationCoversFourWorlds) {
  int count = 0;
  double total = 0.0;
  ForEachWorld(ci_.events(), [&](const Valuation& v, double p) {
    (void)v;
    ++count;
    total += p;
  });
  EXPECT_EQ(count, 4);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST_F(Table1Test, ProbabilityByEnumeration) {
  // P(the Melbourne->Portland leg is booked) = P(pods & stoc) = 0.25.
  double p = ProbabilityByEnumeration(
      ci_.events(), [&](const Valuation& v) {
        return ci_.annotation(trip_mel_pdx_).Evaluate(v);
      });
  EXPECT_NEAR(p, 0.25, 1e-12);
}

TEST_F(Table1Test, PccConversionPreservesWorlds) {
  PccInstance pcc = PccInstance::FromCInstance(ci_);
  EXPECT_EQ(pcc.NumFacts(), ci_.NumFacts());
  for (uint64_t mask = 0; mask < 4; ++mask) {
    Valuation v = Valuation::FromMask(mask, 2);
    Instance a = ci_.World(v);
    Instance b = pcc.World(v);
    EXPECT_EQ(a.NumFacts(), b.NumFacts()) << mask;
    for (const Fact& fact : a.facts()) {
      EXPECT_TRUE(b.Contains(fact));
    }
  }
}

TEST(PccInstanceTest, JointPrimalGraphRespectsAnnotationLinks) {
  Schema schema;
  schema.AddRelation("R", 2);
  PccInstance pcc(schema);
  EventId e = pcc.events().Register("e", 0.5);
  GateId g = pcc.circuit().AddVar(e);
  pcc.AddFact(0, {0, 1}, g);
  Graph joint = pcc.JointPrimalGraph();
  // Vertices: elements 0, 1 plus one gate.
  EXPECT_EQ(joint.NumVertices(), 3u);
  // Gaifman edge 0-1 plus fact-to-gate links.
  EXPECT_TRUE(joint.HasEdge(0, 1));
  EXPECT_TRUE(joint.HasEdge(0, pcc.GateVertex(g)));
  EXPECT_TRUE(joint.HasEdge(1, pcc.GateVertex(g)));
}

TEST(PccInstanceTest, SharedAnnotationGatesCreateJointStructure) {
  // Two facts sharing one annotation gate: the joint graph connects
  // their elements through the gate vertex, even though the Gaifman
  // graph alone leaves them disconnected.
  Schema schema;
  schema.AddRelation("R", 1);
  PccInstance pcc(schema);
  EventId e = pcc.events().Register("e", 0.5);
  GateId g = pcc.circuit().AddVar(e);
  pcc.AddFact(0, {0}, g);
  pcc.AddFact(0, {5}, g);
  Graph joint = pcc.JointPrimalGraph();
  EXPECT_TRUE(joint.HasEdge(0, pcc.GateVertex(g)));
  EXPECT_TRUE(joint.HasEdge(5, pcc.GateVertex(g)));
  // Instance-only Gaifman graph has no edges at all.
  EXPECT_TRUE(pcc.instance().GaifmanEdges().empty());
}

TEST(WorldsDeathTest, TooManyEventsRejected) {
  EventRegistry registry;
  for (int i = 0; i < 31; ++i) registry.RegisterAnonymous(0.5);
  EXPECT_DEATH(
      ForEachWorld(registry, [](const Valuation&, double) {}),
      "enumeration");
}

}  // namespace
}  // namespace tud
