// End-to-end integration tests chaining multiple subsystems, mirroring
// the workflows the paper's introduction motivates: extract uncertain
// facts, enrich with soft rules, query with lineage, condition on
// observations, and reason about provenance — checking every step
// against independent brute-force computation.

#include <cmath>

#include "gtest/gtest.h"
#include "inference/conditioning.h"
#include "inference/exhaustive.h"
#include "inference/junction_tree.h"
#include "inference/possibility.h"
#include "inference/sampling.h"
#include "queries/answers.h"
#include "queries/lineage.h"
#include "queries/query_parser.h"
#include "queries/reachability.h"
#include "rules/chase.h"
#include "semiring/provenance_eval.h"
#include "semiring/semiring.h"
#include "uncertain/c_instance.h"
#include "uncertain/pcc_instance.h"
#include "uncertain/worlds.h"
#include "util/rng.h"

namespace tud {
namespace {

// Pipeline 1: extraction -> soft rules -> query -> conditioning.
TEST(IntegrationTest, ExtractChaseQueryCondition) {
  Schema schema;
  RelationId lives = schema.AddRelation("LivesIn", 2);
  RelationId cityin = schema.AddRelation("CityIn", 2);
  RelationId resides = schema.AddRelation("ResidesIn", 2);

  Dictionary dict;
  Value ann = dict.Intern("ann");
  Value lyon = dict.Intern("lyon");
  Value france = dict.Intern("france");

  // Two independently extracted facts, each 70% reliable.
  CInstance kb(schema);
  EventId x1 = kb.events().Register("extract1", 0.7);
  EventId x2 = kb.events().Register("extract2", 0.7);
  kb.AddFact(lives, {ann, lyon}, BoolFormula::Var(x1));
  kb.AddFact(cityin, {lyon, france}, BoolFormula::Var(x2));

  // Soft rule: LivesIn + CityIn -> ResidesIn @ 0.8.
  Rule rule = MakeRule(
      "residence",
      {{lives, {Term::V(0), Term::V(1)}}, {cityin, {Term::V(1), Term::V(2)}}},
      {{resides, {Term::V(0), Term::V(2)}}}, 0.8);
  ChaseResult chased = ProbabilisticChase(kb, {rule}, dict);
  ASSERT_EQ(chased.num_firings, 1u);

  // Query the chased instance: ∃c ResidesIn(ann, c).
  PccInstance pcc = PccInstance::FromCInstance(chased.instance);
  auto query = ParseConjunctiveQuery("ResidesIn(ann, Where)", schema, dict);
  ASSERT_TRUE(query.has_value());
  GateId lineage = ComputeCqLineage(*query, pcc);
  double p = JunctionTreeProbability(pcc.circuit(), lineage, pcc.events());
  EXPECT_NEAR(p, 0.7 * 0.7 * 0.8, 1e-12);

  // Condition on a curator confirming extraction 1.
  double p_given = JunctionTreeProbabilityWithEvidence(
      pcc.circuit(), lineage, pcc.events(), {{x1, true}});
  EXPECT_NEAR(p_given, 0.7 * 0.8, 1e-12);

  // And the ratio definition agrees.
  GateId obs = pcc.circuit().AddVar(x1);
  auto ratio =
      ConditionalProbability(pcc.circuit(), lineage, obs, pcc.events());
  ASSERT_TRUE(ratio.has_value());
  EXPECT_NEAR(*ratio, p_given, 1e-12);
}

// Pipeline 2: lineage of answers feeds provenance, possibility and
// sampling, all consistent with world enumeration.
TEST(IntegrationTest, AnswersProvenanceAndSampling) {
  Schema schema;
  RelationId e = schema.AddRelation("E", 2);
  Dictionary dict;
  (void)dict;

  PccInstance pcc(schema);
  EventId ea = pcc.events().Register("a", 0.6);
  EventId eb = pcc.events().Register("b", 0.5);
  EventId ec = pcc.events().Register("c", 0.4);
  pcc.AddFact(e, {0, 1}, pcc.circuit().AddVar(ea));
  pcc.AddFact(e, {1, 2}, pcc.circuit().AddVar(eb));
  pcc.AddFact(e, {0, 2}, pcc.circuit().AddVar(ec));

  // Answers of E(0, X).
  ConjunctiveQuery q;
  q.AddAtom(e, {Term::C(0), Term::V(0)});
  auto answers = ComputeAnswerLineages(q, {0}, pcc);
  ASSERT_EQ(answers.size(), 2u);

  for (const AnswerLineage& answer : answers) {
    // Probability by three routes.
    double mp = JunctionTreeProbability(pcc.circuit(), answer.lineage,
                                        pcc.events());
    double ex =
        ExhaustiveProbability(pcc.circuit(), answer.lineage, pcc.events());
    EXPECT_NEAR(mp, ex, 1e-12);
    Rng rng(3);
    double sampled = SampleProbability(pcc.circuit(), answer.lineage,
                                       pcc.events(), 20000, rng);
    EXPECT_NEAR(sampled, ex, 0.02);
    EXPECT_TRUE(IsSatisfiable(pcc.circuit(), answer.lineage));
    EXPECT_FALSE(IsValid(pcc.circuit(), answer.lineage));
  }

  // Reachability 0 -> 2 combines the three edges; check why-provenance.
  GateId reach = ComputeReachabilityLineage(pcc, e, 0, 2);
  auto why = EvalMonotoneCircuit<WhySemiring>(
      pcc.circuit(), reach,
      [](EventId ev) { return WhySemiring::Value{{ev}}; });
  WhySemiring::Value expected = {{ea, eb}, {ec}};
  EXPECT_EQ(why, expected);
  double p_reach =
      JunctionTreeProbability(pcc.circuit(), reach, pcc.events());
  EXPECT_NEAR(p_reach, 1 - (1 - 0.6 * 0.5) * (1 - 0.4), 1e-12);
}

// Pipeline 3: the same random instance queried through every exact
// engine and through the UCQ, answer, and reachability paths, under a
// common enumeration oracle.
class GrandCrossCheckTest : public ::testing::TestWithParam<int> {};

TEST_P(GrandCrossCheckTest, AllEnginesAgreeOnRandomInstances) {
  Rng rng(GetParam());
  Schema schema;
  RelationId r = schema.AddRelation("R", 1);
  RelationId s = schema.AddRelation("S", 2);
  RelationId t = schema.AddRelation("T", 1);

  CInstance ci(schema);
  const uint32_t domain = 4;
  for (Value v = 0; v < domain; ++v) {
    if (rng.Bernoulli(0.7)) {
      EventId ev = ci.events().RegisterAnonymous(0.3 + 0.5 * rng.UniformDouble());
      ci.AddFact(r, {v}, BoolFormula::Var(ev));
    }
    if (rng.Bernoulli(0.7)) {
      EventId ev = ci.events().RegisterAnonymous(0.3 + 0.5 * rng.UniformDouble());
      ci.AddFact(t, {v}, BoolFormula::Var(ev));
    }
    if (v + 1 < domain) {
      // Correlated pair of edges sharing one event.
      EventId ev = ci.events().RegisterAnonymous(0.3 + 0.5 * rng.UniformDouble());
      ci.AddFact(s, {v, v + 1},
                 rng.Bernoulli(0.5)
                     ? BoolFormula::Var(ev)
                     : BoolFormula::Not(BoolFormula::Var(ev)));
    }
  }
  if (ci.events().size() > 12) GTEST_SKIP();

  PccInstance pcc = PccInstance::FromCInstance(ci);
  ConjunctiveQuery q = ConjunctiveQuery::RstPath(r, s, t);
  GateId lineage = ComputeCqLineage(q, pcc);

  double oracle = ProbabilityByEnumeration(
      pcc.events(),
      [&](const Valuation& v) { return q.EvaluateBool(pcc.World(v)); });
  EXPECT_NEAR(JunctionTreeProbability(pcc.circuit(), lineage, pcc.events()),
              oracle, 1e-9);
  EXPECT_NEAR(ExhaustiveProbability(pcc.circuit(), lineage, pcc.events()),
              oracle, 1e-9);
  EXPECT_EQ(IsSatisfiable(pcc.circuit(), lineage), oracle > 1e-15);

  // Reachability over S read as edges: oracle again by enumeration.
  GateId reach = ComputeReachabilityLineage(pcc, s, 0, domain - 1);
  double reach_oracle = ProbabilityByEnumeration(
      pcc.events(), [&](const Valuation& v) {
        return EvaluateReachability(pcc.World(v), s, 0, domain - 1);
      });
  EXPECT_NEAR(JunctionTreeProbability(pcc.circuit(), reach, pcc.events()),
              reach_oracle, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GrandCrossCheckTest,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace tud
