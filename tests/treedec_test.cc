#include <algorithm>

#include "gtest/gtest.h"
#include "treedec/elimination.h"
#include "treedec/graph.h"
#include "treedec/nice_decomposition.h"
#include "treedec/tree_decomposition.h"
#include "util/rng.h"

namespace tud {
namespace {

Graph PathGraph(uint32_t n) {
  Graph g(n);
  for (uint32_t i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  return g;
}

Graph CycleGraph(uint32_t n) {
  Graph g = PathGraph(n);
  g.AddEdge(n - 1, 0);
  return g;
}

Graph CompleteGraph(uint32_t n) {
  Graph g(n);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) g.AddEdge(i, j);
  }
  return g;
}

Graph GridGraph(uint32_t rows, uint32_t cols) {
  Graph g(rows * cols);
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.AddEdge(r * cols + c, r * cols + c + 1);
      if (r + 1 < rows) g.AddEdge(r * cols + c, (r + 1) * cols + c);
    }
  }
  return g;
}

Graph RandomGraph(uint32_t n, double p, uint64_t seed) {
  Rng rng(seed);
  Graph g(n);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(p)) g.AddEdge(i, j);
    }
  }
  return g;
}

TEST(GraphTest, BasicOperations) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(1, 2);  // Duplicate ignored.
  g.AddEdge(2, 2);  // Self-loop ignored.
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.Degree(3), 0u);
}

TEST(EliminationTest, OrdersArePermutations) {
  Graph g = GridGraph(4, 4);
  for (const auto& order : {MinFillOrder(g), MinDegreeOrder(g)}) {
    std::vector<VertexId> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (uint32_t i = 0; i < 16; ++i) EXPECT_EQ(sorted[i], i);
  }
}

TEST(EliminationTest, PathHasWidthOne) {
  Graph g = PathGraph(10);
  EXPECT_EQ(EliminationWidth(g, MinFillOrder(g)), 1u);
  EXPECT_EQ(EliminationWidth(g, MinDegreeOrder(g)), 1u);
}

TEST(EliminationTest, CycleHasWidthTwo) {
  Graph g = CycleGraph(8);
  EXPECT_EQ(EliminationWidth(g, MinFillOrder(g)), 2u);
}

TEST(EliminationTest, CliqueHasWidthNMinusOne) {
  Graph g = CompleteGraph(6);
  EXPECT_EQ(EliminationWidth(g, MinFillOrder(g)), 5u);
}

TEST(ExactTreewidthTest, KnownValues) {
  EXPECT_EQ(ExactTreewidth(PathGraph(8)), 1u);
  EXPECT_EQ(ExactTreewidth(CycleGraph(8)), 2u);
  EXPECT_EQ(ExactTreewidth(CompleteGraph(5)), 4u);
  EXPECT_EQ(ExactTreewidth(GridGraph(3, 3)), 3u);
  EXPECT_EQ(ExactTreewidth(Graph(3)), 0u);  // Edgeless.
  EXPECT_EQ(ExactTreewidth(GridGraph(4, 4), 10), std::nullopt);  // Too big.
}

TEST(ExactTreewidthTest, HeuristicsAreUpperBounds) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph g = RandomGraph(10, 0.3, seed);
    uint32_t exact = *ExactTreewidth(g);
    EXPECT_GE(EliminationWidth(g, MinFillOrder(g)), exact);
    EXPECT_GE(EliminationWidth(g, MinDegreeOrder(g)), exact);
  }
}

TEST(TreeDecompositionTest, TrivialIsValid) {
  Graph g = CycleGraph(5);
  TreeDecomposition td = TreeDecomposition::Trivial(g);
  EXPECT_TRUE(td.IsValidFor(g));
  EXPECT_EQ(td.Width(), 4);
}

class DecompositionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DecompositionPropertyTest, EliminationDecompositionIsValid) {
  Rng rng(GetParam());
  uint32_t n = 5 + static_cast<uint32_t>(rng.UniformInt(15));
  Graph g = RandomGraph(n, 0.25, GetParam() * 977 + 1);
  std::vector<VertexId> order = MinFillOrder(g);
  TreeDecomposition td = TreeDecomposition::FromEliminationOrder(g, order);
  EXPECT_TRUE(td.IsValidFor(g));
  EXPECT_EQ(td.Width(), static_cast<int>(EliminationWidth(g, order)));
}

TEST_P(DecompositionPropertyTest, NiceDecompositionIsWellFormed) {
  Rng rng(GetParam() + 500);
  uint32_t n = 5 + static_cast<uint32_t>(rng.UniformInt(10));
  Graph g = RandomGraph(n, 0.3, GetParam() * 31 + 7);
  TreeDecomposition td =
      TreeDecomposition::FromEliminationOrder(g, MinFillOrder(g));
  NiceTreeDecomposition nice =
      NiceTreeDecomposition::FromTreeDecomposition(td);
  EXPECT_TRUE(nice.IsWellFormed());
  EXPECT_EQ(nice.Width(), td.Width());
  // Every graph edge is covered by some nice bag.
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : g.Neighbors(v)) {
      if (u < v) continue;
      EXPECT_NE(nice.FindNodeCovering({v, u}), kInvalidNiceNode)
          << "edge " << v << "-" << u;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecompositionPropertyTest,
                         ::testing::Range(0, 20));

TEST(TreeDecompositionTest, BagOfVertexCoversCliques) {
  Graph g = CompleteGraph(4);
  std::vector<VertexId> order = MinFillOrder(g);
  std::vector<uint32_t> position(4);
  for (uint32_t i = 0; i < 4; ++i) position[order[i]] = i;
  std::vector<BagId> bag_of;
  TreeDecomposition td =
      TreeDecomposition::FromEliminationOrder(g, order, &bag_of);
  // The whole graph is a clique: the bag of the first-eliminated vertex
  // must contain all vertices.
  const auto& bag = td.bag(bag_of[order[0]]);
  EXPECT_EQ(bag.size(), 4u);
}

TEST(TreeDecompositionTest, FindBagContaining) {
  Graph g = PathGraph(5);
  TreeDecomposition td =
      TreeDecomposition::FromEliminationOrder(g, MinFillOrder(g));
  EXPECT_NE(td.FindBagContaining({2, 3}), kInvalidBag);
  EXPECT_EQ(td.FindBagContaining({0, 4}), kInvalidBag);
}

TEST(TreeDecompositionTest, InvalidDecompositionDetected) {
  Graph g = PathGraph(3);
  TreeDecomposition td;
  td.AddBag({0, 1}, kInvalidBag);
  // Missing vertex 2 and edge {1,2}.
  EXPECT_FALSE(td.IsValidFor(g));
}

TEST(TreeDecompositionTest, DisconnectedOccurrencesDetected) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  TreeDecomposition td;
  BagId root = td.AddBag({0, 1}, kInvalidBag);
  BagId middle = td.AddBag({1, 2}, root);
  td.AddBag({0}, middle);  // Vertex 0 reappears below a bag without it.
  EXPECT_FALSE(td.IsValidFor(g));
}

TEST(NiceDecompositionTest, PathDecomposition) {
  Graph g = PathGraph(6);
  TreeDecomposition td =
      TreeDecomposition::FromEliminationOrder(g, MinFillOrder(g));
  NiceTreeDecomposition nice =
      NiceTreeDecomposition::FromTreeDecomposition(td);
  EXPECT_TRUE(nice.IsWellFormed());
  EXPECT_EQ(nice.Width(), 1);
  EXPECT_TRUE(nice.bag(nice.root()).empty());
}

TEST(NiceDecompositionTest, TopOfBagMapsToMatchingBags) {
  Graph g = GridGraph(3, 3);
  TreeDecomposition td =
      TreeDecomposition::FromEliminationOrder(g, MinFillOrder(g));
  std::vector<NiceNodeId> top_of_bag;
  NiceTreeDecomposition nice =
      NiceTreeDecomposition::FromTreeDecomposition(td, &top_of_bag);
  ASSERT_EQ(top_of_bag.size(), td.NumBags());
  for (BagId b = 0; b < td.NumBags(); ++b) {
    EXPECT_EQ(nice.bag(top_of_bag[b]), td.bag(b));
  }
}

}  // namespace
}  // namespace tud
