// Pinned-decision and equivalence suite for the batch cost model: the
// engine's EstimateBatch must take the shared calibrating pass exactly
// when the union decomposition's 2 * sum 2^|bag| beats the per-root
// sum, fall back per root when every root is better off alone, pick
// the middle kGrouped path when cone-overlap groups win individually
// but the whole set loses — and in every case report the two cost
// numbers it compared and agree numerically with sequential Estimate.

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "inference/engine.h"
#include "inference/junction_tree.h"
#include "util/rng.h"

namespace tud {
namespace {

EventRegistry RandomRegistry(Rng& rng, uint32_t num_events) {
  EventRegistry registry;
  for (uint32_t i = 0; i < num_events; ++i) {
    registry.Register("e" + std::to_string(i),
                      0.05 + 0.9 * rng.UniformDouble());
  }
  return registry;
}

// A conjunction chain over `events` starting at event `first`: gate i
// is And(gate i-1, var(first + i)). Chains are the controllable
// workload here — the cone of gate k contains the whole prefix, so
// roots picked inside one chain overlap totally, and chains over
// disjoint event ranges have disjoint cones.
std::vector<GateId> BuildChain(BoolCircuit& c, EventId first,
                               uint32_t length) {
  std::vector<GateId> gates;
  gates.push_back(c.AddVar(first));
  for (uint32_t i = 1; i < length; ++i) {
    gates.push_back(c.AddAnd(gates.back(), c.AddVar(first + i)));
  }
  return gates;
}

double ChainProbability(const EventRegistry& registry, EventId first,
                        uint32_t length) {
  double p = 1.0;
  for (uint32_t i = 0; i < length; ++i) {
    p *= registry.probability(first + i);
  }
  return p;
}

// Many roots inside ONE chain's cone: the union decomposition is the
// deepest root's own, so two shared sweeps beat five upward sweeps.
TEST(BatchCostModelTest, SubLineageBatteryTakesSharedPass) {
  Rng rng(11);
  EventRegistry registry = RandomRegistry(rng, 32);
  BoolCircuit c;
  std::vector<GateId> chain = BuildChain(c, 0, 32);
  std::vector<GateId> roots = {chain[31], chain[27], chain[23], chain[19],
                               chain[15]};

  JunctionTreeEngine engine(/*seed_topological=*/false,
                            /*cache_plans=*/true);
  std::vector<EngineResult> results =
      engine.EstimateBatch(c, roots, registry, {});
  ASSERT_EQ(results.size(), roots.size());
  for (size_t i = 0; i < roots.size(); ++i) {
    const EngineStats& s = results[i].stats;
    EXPECT_EQ(s.batch_path, BatchPath::kShared) << "root " << i;
    EXPECT_EQ(s.batch_groups, 1u);
    EXPECT_GT(s.batch_shared_cost, 0.0);
    EXPECT_GT(s.batch_per_root_cost, 0.0);
    EXPECT_LE(s.batch_shared_cost, s.batch_per_root_cost);
    EXPECT_NEAR(results[i].value,
                engine.Estimate(c, roots[i], registry, {}).value, 1e-12);
  }
}

// One root per disjoint chain: the shared pass costs two sweeps over
// the same total table mass the per-root plans cover in one, so the
// model must keep the sequential path.
TEST(BatchCostModelTest, DisjointSingletonsStayPerRoot) {
  Rng rng(12);
  EventRegistry registry = RandomRegistry(rng, 30);
  BoolCircuit c;
  std::vector<GateId> a = BuildChain(c, 0, 10);
  std::vector<GateId> b = BuildChain(c, 10, 10);
  std::vector<GateId> d = BuildChain(c, 20, 10);
  std::vector<GateId> roots = {a.back(), b.back(), d.back()};

  JunctionTreeEngine engine(/*seed_topological=*/false,
                            /*cache_plans=*/true);
  std::vector<EngineResult> results =
      engine.EstimateBatch(c, roots, registry, {});
  ASSERT_EQ(results.size(), roots.size());
  for (size_t i = 0; i < roots.size(); ++i) {
    const EngineStats& s = results[i].stats;
    EXPECT_EQ(s.batch_path, BatchPath::kPerRoot) << "root " << i;
    EXPECT_EQ(s.batch_groups, 3u);
    EXPECT_GT(s.batch_shared_cost, s.batch_per_root_cost);
    EXPECT_NEAR(results[i].value,
                ChainProbability(registry, static_cast<EventId>(10 * i), 10),
                1e-12);
  }
}

// A battery of one is a degenerate batch: one upward sweep beats the
// two the shared pass would spend, whatever the root looks like.
TEST(BatchCostModelTest, SingleRootBatteryIsPerRoot) {
  Rng rng(13);
  EventRegistry registry = RandomRegistry(rng, 12);
  BoolCircuit c;
  std::vector<GateId> chain = BuildChain(c, 0, 12);

  JunctionTreeEngine engine(/*seed_topological=*/false,
                            /*cache_plans=*/true);
  std::vector<EngineResult> results =
      engine.EstimateBatch(c, {chain.back()}, registry, {});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].stats.batch_path, BatchPath::kPerRoot);
  EXPECT_EQ(results[0].stats.batch_groups, 1u);
  EXPECT_NEAR(results[0].value, ChainProbability(registry, 0, 12), 1e-12);
}

// The middle path: a tight sub-lineage cluster on a short chain (shared
// wins within the cluster) plus one singleton root on a much longer
// disjoint chain (expensive enough that batching the WHOLE set would
// pay its table mass twice). The whole-set comparison loses, the
// cone-overlap groups win individually: kGrouped, one shared group and
// one per-root singleton.
TEST(BatchCostModelTest, MixedBatteryTakesGroupedPath) {
  Rng rng(14);
  EventRegistry registry = RandomRegistry(rng, 100);
  BoolCircuit c;
  std::vector<GateId> cluster = BuildChain(c, 0, 12);
  std::vector<GateId> heavy = BuildChain(c, 12, 80);
  std::vector<GateId> roots = {cluster[11], cluster[10], cluster[9],
                               heavy.back()};

  JunctionTreeEngine engine(/*seed_topological=*/false,
                            /*cache_plans=*/true);
  std::vector<EngineResult> results =
      engine.EstimateBatch(c, roots, registry, {});
  ASSERT_EQ(results.size(), roots.size());
  for (size_t i = 0; i < roots.size(); ++i) {
    const EngineStats& s = results[i].stats;
    EXPECT_EQ(s.batch_path, BatchPath::kGrouped) << "root " << i;
    EXPECT_EQ(s.batch_groups, 2u);
    EXPECT_GT(s.batch_shared_cost, s.batch_per_root_cost);
  }
  EXPECT_NEAR(results[0].value, ChainProbability(registry, 0, 12), 1e-12);
  EXPECT_NEAR(results[1].value, ChainProbability(registry, 0, 11), 1e-12);
  EXPECT_NEAR(results[2].value, ChainProbability(registry, 0, 10), 1e-12);
  EXPECT_NEAR(results[3].value, ChainProbability(registry, 12, 80), 1e-9);
}

// Randomized equivalence across whatever path the model picks: two
// cone clusters coupled only through their own event blocks, batched
// results must match sequential Estimate root for root.
class BatchCostEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(BatchCostEquivalenceTest, GroupedBatchMatchesSequentialEstimate) {
  Rng rng(GetParam() + 4000);
  const uint32_t num_events = 14;
  EventRegistry registry = RandomRegistry(rng, num_events);
  BoolCircuit c;
  // Two random DAG clusters over disjoint event halves.
  std::vector<std::vector<GateId>> pools(2);
  for (uint32_t block = 0; block < 2; ++block) {
    const EventId base = block * (num_events / 2);
    for (EventId e = 0; e < num_events / 2; ++e) {
      pools[block].push_back(c.AddVar(base + e));
    }
    for (uint32_t i = 0; i < 18; ++i) {
      GateId x = pools[block][rng.UniformInt(pools[block].size())];
      GateId y = pools[block][rng.UniformInt(pools[block].size())];
      switch (rng.UniformInt(3)) {
        case 0:
          pools[block].push_back(c.AddNot(x));
          break;
        case 1:
          pools[block].push_back(c.AddAnd(x, y));
          break;
        default:
          pools[block].push_back(c.AddOr(x, y));
          break;
      }
    }
  }
  std::vector<GateId> roots;
  for (uint32_t block = 0; block < 2; ++block) {
    for (int k = 0; k < 4; ++k) {
      roots.push_back(pools[block][rng.UniformInt(pools[block].size())]);
    }
  }
  const Evidence evidence =
      rng.Bernoulli(0.5) ? Evidence{{1, true}, {8, false}} : Evidence{};

  JunctionTreeEngine engine(/*seed_topological=*/false,
                            /*cache_plans=*/true);
  std::vector<EngineResult> batched =
      engine.EstimateBatch(c, roots, registry, evidence);
  ASSERT_EQ(batched.size(), roots.size());
  for (size_t i = 0; i < roots.size(); ++i) {
    EXPECT_NEAR(batched[i].value,
                engine.Estimate(c, roots[i], registry, evidence).value, 1e-9)
        << "root " << i << " path "
        << static_cast<int>(batched[i].stats.batch_path);
    EXPECT_EQ(batched[i].stats.batch_size, roots.size());
    EXPECT_GT(batched[i].stats.batch_groups, 0u);
  }
  // Reissuing the same battery permuted must reuse the cached decision
  // (one build total) and keep every value identical.
  std::vector<GateId> permuted(roots.rbegin(), roots.rend());
  const uint64_t builds_before = engine.batch_builds();
  std::vector<EngineResult> again =
      engine.EstimateBatch(c, permuted, registry, evidence);
  EXPECT_EQ(engine.batch_builds(), builds_before);
  for (size_t i = 0; i < permuted.size(); ++i) {
    EXPECT_DOUBLE_EQ(again[i].value,
                     batched[roots.size() - 1 - i].value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchCostEquivalenceTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace tud
